package extract

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/entity"
)

func TestPhonesFormats(t *testing.T) {
	text := `Call (415) 555-1234 today, or fax 212-555-9876.
	Alt: 303.555.4567 and 808 555 2222, int'l +1 415 555 1234.`
	got := Phones(text)
	want := []entity.CanonicalPhone{"4155551234", "2125559876", "3035554567", "8085552222"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Phones = %v, want %v", got, want)
	}
}

func TestPhonesDeduplicated(t *testing.T) {
	text := "(415) 555-1234 also written 415-555-1234 and 415.555.1234"
	got := Phones(text)
	if len(got) != 1 || got[0] != "4155551234" {
		t.Errorf("Phones = %v, want single 4155551234", got)
	}
}

func TestPhonesRejectsNonNANP(t *testing.T) {
	for _, text := range []string{
		"(015) 555-1234", // area code starts with 0
		"(415) 155-1234", // exchange starts with 1
		"555-1234",       // 7 digits
		"no numbers here",
		"",
	} {
		if got := Phones(text); len(got) != 0 {
			t.Errorf("Phones(%q) = %v, want none", text, got)
		}
	}
}

func TestPhonesLongDigitRuns(t *testing.T) {
	// Digits embedded in longer runs must not match (boundary control):
	// an order ID that happens to contain a phone-shaped substring.
	if got := Phones("order 4155551234567"); len(got) != 0 {
		t.Errorf("matched inside long digit run: %v", got)
	}
	// ...but the ISBN-adjacent false-positive the paper discusses (§3.5)
	// IS possible for well-formatted 10-digit runs; accept bare
	// 415-555-1234 even mid-sentence.
	if got := Phones("id 415-555-1234 end"); len(got) != 1 {
		t.Errorf("formatted phone missed: %v", got)
	}
}

func TestMatchPhones(t *testing.T) {
	db, err := entity.Generate(entity.Config{Domain: entity.Restaurants, N: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e0, e5 := db.Entities[0], db.Entities[5]
	text := "Two places: " + e0.Phone.Format() + " and " + e5.Phone.FormatDashed() +
		" but not (999) 999-9999."
	got := MatchPhones(db, text)
	if !reflect.DeepEqual(got, []int{0, 5}) {
		t.Errorf("MatchPhones = %v, want [0 5]", got)
	}
}

func TestMatchPhonesNoDuplicates(t *testing.T) {
	db, _ := entity.Generate(entity.Config{Domain: entity.Banks, N: 5, Seed: 10})
	e := db.Entities[2]
	text := e.Phone.Format() + " " + e.Phone.FormatDotted() + " " + e.Phone.FormatDashed()
	if got := MatchPhones(db, text); len(got) != 1 || got[0] != 2 {
		t.Errorf("MatchPhones = %v, want [2]", got)
	}
}

func TestPhonesRandomizedRoundTrip(t *testing.T) {
	rng := dist.NewRNG(11)
	for i := 0; i < 500; i++ {
		p := entity.RandomPhone(rng)
		var text string
		switch i % 4 {
		case 0:
			text = "Reach us at " + p.Format() + " any time."
		case 1:
			text = "tel: " + p.FormatDashed()
		case 2:
			text = p.FormatDotted() + " is the number"
		case 3:
			text = "Phone " + string(p[:3]) + " " + string(p[3:6]) + " " + string(p[6:])
		}
		got := Phones(text)
		if len(got) != 1 || got[0] != p {
			t.Fatalf("case %d: Phones(%q) = %v, want %q", i%4, text, got, p)
		}
	}
}
