package extract

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/entity"
)

func TestISBNsRequiresMarker(t *testing.T) {
	// Valid ISBN-10 but no "ISBN" marker nearby: rejected.
	if got := ISBNs("the code 0306406152 appears here"); len(got) != 0 {
		t.Errorf("matched without marker: %v", got)
	}
	// Marker present: accepted.
	got := ISBNs("ISBN: 0306406152 (hardcover)")
	if !reflect.DeepEqual(got, []string{"0306406152"}) {
		t.Errorf("ISBNs = %v", got)
	}
}

func TestISBNsMarkerCaseInsensitive(t *testing.T) {
	for _, marker := range []string{"isbn", "Isbn", "ISBN", "eISBN"} {
		text := marker + " 0306406152"
		if got := ISBNs(text); len(got) != 1 {
			t.Errorf("marker %q: ISBNs = %v", marker, got)
		}
	}
}

func TestISBNsMarkerWindow(t *testing.T) {
	// Marker far outside the window: rejected.
	text := "ISBN" + strings.Repeat(" filler", 30) + " 0306406152"
	if got := ISBNs(text); len(got) != 0 {
		t.Errorf("marker outside window should not match: %v", got)
	}
	// Marker just inside the window after the match also counts.
	text2 := "0306406152 is the ISBN"
	if got := ISBNs(text2); len(got) != 1 {
		t.Errorf("marker after match should count: %v", got)
	}
}

func TestISBNsChecksumRejected(t *testing.T) {
	if got := ISBNs("ISBN 0306406153"); len(got) != 0 { // bad check digit
		t.Errorf("invalid checksum matched: %v", got)
	}
	if got := ISBNs("ISBN 9780306406156"); len(got) != 0 {
		t.Errorf("invalid ISBN-13 checksum matched: %v", got)
	}
}

func TestISBNsHyphenatedForms(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"ISBN 0-306-40615-2", "0306406152"},
		{"ISBN-13: 978-0-306-40615-7", "9780306406157"},
		{"ISBN 978 0 306 40615 7", "9780306406157"},
		{"ISBN 097522980X", "097522980X"},
		{"ISBN 0-9752298-0-x", "097522980X"},
	}
	for _, c := range cases {
		got := ISBNs(c.text)
		if len(got) != 1 || got[0] != c.want {
			t.Errorf("ISBNs(%q) = %v, want [%s]", c.text, got, c.want)
		}
	}
}

func TestISBNsDeduplicated(t *testing.T) {
	got := ISBNs("ISBN 0306406152 and again ISBN 0-306-40615-2")
	if len(got) != 1 {
		t.Errorf("duplicate forms should dedup: %v", got)
	}
}

func TestISBNsMultiple(t *testing.T) {
	got := ISBNs("ISBN 0306406152; ISBN 9780306406157; ISBN 097522980X")
	if len(got) != 3 {
		t.Errorf("ISBNs = %v, want 3 values", got)
	}
}

func TestMatchISBNs(t *testing.T) {
	db, err := entity.Generate(entity.Config{Domain: entity.Books, N: 30, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b3, b7 := db.Entities[3], db.Entities[7]
	text := "Catalog: ISBN " + b3.ISBN10 + " — also ISBN " + entity.FormatISBN13(b7.ISBN13)
	got := MatchISBNs(db, text)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Errorf("MatchISBNs = %v, want [3 7]", got)
	}
}

func TestMatchISBNsBothFormsSameEntity(t *testing.T) {
	db, _ := entity.Generate(entity.Config{Domain: entity.Books, N: 5, Seed: 13})
	b := db.Entities[1]
	text := "ISBN-10 " + b.ISBN10 + " / ISBN-13 " + b.ISBN13
	got := MatchISBNs(db, text)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("both forms should resolve to one entity: %v", got)
	}
}
