package extract

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"repro/internal/classify"
	"repro/internal/entity"
	"repro/internal/htmlx"
)

// Session is the streaming extraction pipeline for one worker: it fuses
// tokenize → match → classify over a page without building the DOM, the
// joined text string, or per-call token slices. All scratch state is
// reused across pages, so Page performs zero allocations at steady
// state. Output is mention-identical to Extractor.Page (the retained-DOM
// reference path) on rendered pages — pinned by the property tests.
//
// A Session is not safe for concurrent use; create one per goroutine
// with Extractor.NewSession (sessions share the extractor's read-only
// automaton and classifier).
type Session struct {
	x  *Extractor
	ac *AhoCorasick

	str htmlx.Streamer

	// text accumulates the page's whitespace-collapsed text — byte for
	// byte the string the DOM path materializes via Node.Text — and is
	// what the automaton and scorer consume incrementally.
	text    []byte
	started bool // a non-space byte has been emitted
	pending bool // whitespace run awaiting collapse into one ' '

	acState int32
	scorer  *classify.Scorer

	mentions []Mention
	phoneIDs []int
	homeIDs  []int

	// Generation-stamped dedup marks, indexed by dense entity ID: no
	// per-page map clearing.
	gen      uint64
	seenKey  []uint64 // phone or ISBN mentions
	seenHome []uint64

	// Books: candidate/marker positions for the §3.2 "ISBN" window rule,
	// resolved in candidate order at end of page.
	cands   []isbnCand
	markers []int

	urlBuf []byte // canonical-homepage scratch

	onTextF   func([]byte)
	onAnchorF func([]byte)
	emitF     func(pi int32, end int)
}

// isbnCand is one automaton ISBN hit: [lo, hi) in collapsed-text
// coordinates plus the owning entity.
type isbnCand struct {
	lo, hi int
	id     int
}

// NewSession returns a streaming extraction session. It builds the
// extractor's shared automaton on first use and errors if the database
// has no patterns for its domain or the classifier is unusable.
func (x *Extractor) NewSession() (*Session, error) {
	ac, err := x.automaton()
	if err != nil {
		return nil, err
	}
	s := &Session{
		x:        x,
		ac:       ac,
		seenKey:  make([]uint64, x.db.N()),
		seenHome: make([]uint64, x.db.N()),
	}
	if x.reviewAttr && x.reviewClf != nil {
		s.scorer, err = x.reviewClf.NewScorer()
		if err != nil {
			return nil, err
		}
	}
	s.onTextF = s.onText
	s.onAnchorF = s.onAnchor
	s.emitF = s.onHit
	return s, nil
}

// Page extracts all entity mentions from one HTML page via the fused
// streaming pipeline. The returned slice is reused by the next Page
// call; copy it if it must outlive the call. Semantics mirror
// Extractor.Page exactly: phones (or ISBNs with a nearby "ISBN" marker)
// matched against the database over rendered page text, homepages from
// anchor hrefs, and — when a classifier is present — a review mention
// per phone-matched entity on positively classified pages.
//
//repro:noalloc
func (s *Session) Page(html []byte) []Mention {
	s.gen++
	if s.gen == 0 { // uint64 wrap: clear stale marks, then restart at 1
		clear(s.seenKey)
		clear(s.seenHome)
		s.gen = 1
	}
	s.text = s.text[:0]
	s.started = false
	s.pending = false
	s.acState = 0
	s.mentions = s.mentions[:0]
	s.phoneIDs = s.phoneIDs[:0]
	s.homeIDs = s.homeIDs[:0]
	s.cands = s.cands[:0]
	s.markers = s.markers[:0]
	if s.scorer != nil {
		s.scorer.Reset()
	}

	s.str.Stream(html, s.onTextF, s.onAnchorF)

	if s.x.db.Domain == entity.Books {
		for _, c := range s.cands {
			if !s.markerNear(c) {
				continue
			}
			if s.seenKey[c.id] == s.gen {
				continue
			}
			s.seenKey[c.id] = s.gen
			s.mentions = append(s.mentions, Mention{EntityID: c.id, Attr: entity.AttrISBN}) //repro:alloc-ok mentions keeps its steady-state capacity across pages
		}
		return s.mentions
	}

	for _, id := range s.phoneIDs {
		s.mentions = append(s.mentions, Mention{EntityID: id, Attr: entity.AttrPhone}) //repro:alloc-ok mentions keeps its steady-state capacity across pages
	}
	for _, id := range s.homeIDs {
		s.mentions = append(s.mentions, Mention{EntityID: id, Attr: entity.AttrHomepage}) //repro:alloc-ok mentions keeps its steady-state capacity across pages
	}
	if s.x.reviewAttr && s.scorer != nil && len(s.phoneIDs) > 0 {
		if s.scorer.LogOdds() > 0 {
			for _, id := range s.phoneIDs {
				s.mentions = append(s.mentions, Mention{EntityID: id, Attr: entity.AttrReview}) //repro:alloc-ok mentions keeps its steady-state capacity across pages
			}
		}
	}
	return s.mentions
}

// onText receives one decoded text run from the streaming visitor,
// appends its whitespace-collapsed form to the page text, and feeds the
// newly appended bytes to the automaton and the review scorer.
func (s *Session) onText(run []byte) {
	old := len(s.text)
	s.text = appendCollapsed(s.text, run, &s.started, &s.pending)
	// Node.Text joins text nodes with a space before collapsing; defer it
	// so a trailing separator never materializes.
	s.pending = true
	chunk := s.text[old:]
	if len(chunk) == 0 {
		return
	}
	s.acState = s.ac.Feed(s.acState, chunk, old, s.emitF)
	if s.scorer != nil {
		s.scorer.Write(chunk)
	}
}

// onHit receives one automaton hit at absolute collapsed-text offset end.
func (s *Session) onHit(pi int32, end int) {
	v := s.ac.Value(pi)
	if s.x.db.Domain == entity.Books {
		if v == isbnMarkerValue {
			s.markers = append(s.markers, end-4)
			return
		}
		s.cands = append(s.cands, isbnCand{lo: end - s.ac.PatternLen(pi), hi: end, id: v})
		return
	}
	if s.seenKey[v] == s.gen {
		return
	}
	s.seenKey[v] = s.gen
	s.phoneIDs = append(s.phoneIDs, v)
}

// onAnchor resolves one anchor href against the homepage index.
func (s *Session) onAnchor(href []byte) {
	s.urlBuf = entity.AppendCanonicalURL(s.urlBuf[:0], href)
	id, ok := s.x.db.LookupHomepageKey(s.urlBuf)
	if !ok {
		return
	}
	if s.seenHome[id] == s.gen {
		return
	}
	s.seenHome[id] = s.gen
	s.homeIDs = append(s.homeIDs, id)
}

// markerNear reports whether any "ISBN" marker starting at position m
// satisfies the §3.2 window rule for candidate c: m >= lo-isbnWindow and
// the marker's end within isbnWindow past the candidate (the same
// acceptance region hasISBNMarker checks on the joined string).
func (s *Session) markerNear(c isbnCand) bool {
	for _, m := range s.markers {
		if m >= c.lo-isbnWindow && m+4 <= c.hi+isbnWindow {
			return true
		}
	}
	return false
}

// appendCollapsed appends run to dst with whitespace runs collapsed to
// single spaces, exactly reproducing strings.Join(strings.Fields(x), " ")
// semantics incrementally (unicode whitespace; no leading or trailing
// separator). started/pending carry the collapse state across runs.
func appendCollapsed(dst, run []byte, started, pending *bool) []byte {
	for i := 0; i < len(run); {
		c := run[i]
		if c < utf8.RuneSelf {
			if c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' {
				*pending = true
				i++
				continue
			}
			if *started && *pending {
				dst = append(dst, ' ')
			}
			*pending = false
			*started = true
			dst = append(dst, c)
			i++
			continue
		}
		r, size := utf8.DecodeRune(run[i:])
		if unicode.IsSpace(r) {
			*pending = true
			i += size
			continue
		}
		if *started && *pending {
			dst = append(dst, ' ')
		}
		*pending = false
		*started = true
		dst = append(dst, run[i:i+size]...)
		i += size
	}
	return dst
}

// Trainer feeds streamed training pages into a Naïve-Bayes model
// without materializing per-page text strings: pages stream through the
// visitor into a reused collapsed-text buffer, and only vocabulary-new
// tokens allocate.
type Trainer struct {
	nb      *classify.NaiveBayes
	str     htmlx.Streamer
	text    []byte
	started bool
	pending bool
	onTextF func([]byte)
}

// NewTrainer returns a Trainer around a fresh model with the given
// Laplace smoothing parameter (<= 0 defaults to 1).
func NewTrainer(alpha float64) *Trainer {
	t := &Trainer{nb: classify.NewNaiveBayes(alpha)}
	t.onTextF = func(run []byte) {
		t.text = appendCollapsed(t.text, run, &t.started, &t.pending)
		t.pending = true
	}
	return t
}

// Add trains on one labeled HTML page.
func (t *Trainer) Add(html []byte, isReview bool) {
	t.text = t.text[:0]
	t.started = false
	t.pending = false
	t.str.Stream(html, t.onTextF, nil)
	t.nb.TrainBytes(t.text, isReview)
}

// Classifier returns the trained model, erroring unless both classes
// were seen.
func (t *Trainer) Classifier() (*classify.NaiveBayes, error) {
	if !t.nb.Trained() {
		return nil, fmt.Errorf("extract: training data must include both classes")
	}
	return t.nb, nil
}
