// Package extract implements the identifying-attribute extractors of
// §3.2: a regular-expression US phone extractor, an ISBN extractor that
// requires the string "ISBN" in a small window near the match, homepage
// extraction from anchor hrefs, and review-page detection via the
// Naïve-Bayes classifier. Extracted values are matched against the
// entity database to establish entity presence on a page.
package extract

import (
	"regexp"
	"sort"

	"repro/internal/entity"
)

// phoneRe matches the common separated US phone renderings:
// (415) 555-1234, 415-555-1234, 415.555.1234, 415 555 1234 and the
// +1-prefixed variants. Area code and exchange must start with 2–9 per
// NANP. The trailing word boundary prevents matching a prefix of a
// longer digit run.
var phoneRe = regexp.MustCompile(
	`(?:\+?1[-. ]?)?(?:\(([2-9][0-9]{2})\)[-. ]?|([2-9][0-9]{2})[-. ])([2-9][0-9]{2})[-. ]([0-9]{4})\b`)

// barePhoneRe matches an unseparated ten-digit run that is NANP-shaped.
// Word boundaries on both sides reject substrings of longer digit runs.
// The paper accepts this form too and discusses the resulting
// false-match risk in §3.5.
var barePhoneRe = regexp.MustCompile(`\b([2-9][0-9]{2})([2-9][0-9]{2})([0-9]{4})\b`)

// Phones returns the distinct canonical phone numbers found in text,
// ordered by first appearance.
func Phones(text string) []entity.CanonicalPhone {
	type hit struct {
		pos   int
		phone entity.CanonicalPhone
	}
	var hits []hit
	for _, loc := range phoneRe.FindAllStringSubmatchIndex(text, -1) {
		area := group(text, loc, 1)
		if area == "" {
			area = group(text, loc, 2)
		}
		if p, ok := entity.NormalizePhone(area + group(text, loc, 3) + group(text, loc, 4)); ok {
			hits = append(hits, hit{loc[0], p})
		}
	}
	for _, loc := range barePhoneRe.FindAllStringSubmatchIndex(text, -1) {
		if p, ok := entity.NormalizePhone(text[loc[0]:loc[1]]); ok {
			hits = append(hits, hit{loc[0], p})
		}
	}
	if len(hits) == 0 {
		return nil
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	seen := make(map[entity.CanonicalPhone]struct{}, len(hits))
	out := make([]entity.CanonicalPhone, 0, len(hits))
	for _, h := range hits {
		if _, dup := seen[h.phone]; dup {
			continue
		}
		seen[h.phone] = struct{}{}
		out = append(out, h.phone)
	}
	return out
}

// group returns the text of capture group g from a SubmatchIndex result,
// or "" if the group did not participate in the match.
func group(text string, loc []int, g int) string {
	if loc[2*g] < 0 {
		return ""
	}
	return text[loc[2*g]:loc[2*g+1]]
}

// MatchPhones returns the IDs of database entities whose phone numbers
// appear in text, in first-appearance order without duplicates.
func MatchPhones(db *entity.DB, text string) []int {
	var out []int
	seen := make(map[int]struct{})
	for _, p := range Phones(text) {
		if id, ok := db.LookupPhone(p); ok {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}
