package extract

import (
	"fmt"
	"testing"

	"repro/internal/classify"
	"repro/internal/dist"
	"repro/internal/entity"
	"repro/internal/textgen"
)

func trainedClassifier(t *testing.T) *classify.NaiveBayes {
	t.Helper()
	rng := dist.NewRNG(99)
	nb := classify.NewNaiveBayes(1)
	for i := 0; i < 200; i++ {
		nb.Train(textgen.Review(rng, "Some Place", 5), true)
		nb.Train(textgen.Boilerplate(rng, 5), false)
	}
	return nb
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil db should fail")
	}
	db, _ := entity.Generate(entity.Config{Domain: entity.Restaurants, N: 5, Seed: 1})
	if _, err := New(db, classify.NewNaiveBayes(1)); err == nil {
		t.Error("untrained classifier should fail")
	}
	if _, err := New(db, nil); err != nil {
		t.Errorf("nil classifier should be allowed: %v", err)
	}
}

func TestPagePhoneAndHomepage(t *testing.T) {
	db, _ := entity.Generate(entity.Config{Domain: entity.Restaurants, N: 50, Seed: 2})
	x, err := New(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	var target entity.Entity
	for _, e := range db.Entities {
		if e.Homepage != "" {
			target = e
			break
		}
	}
	html := fmt.Sprintf(`<html><body>
	<h1>%s</h1>
	<p>Phone: %s</p>
	<a href="%s">Website</a>
	<a href="http://unrelated.example.org/">other</a>
	</body></html>`, target.Name, target.Phone.Format(), target.Homepage)

	mentions := x.Page([]byte(html))
	var gotPhone, gotHome bool
	for _, m := range mentions {
		if m.EntityID == target.ID && m.Attr == entity.AttrPhone {
			gotPhone = true
		}
		if m.EntityID == target.ID && m.Attr == entity.AttrHomepage {
			gotHome = true
		}
	}
	if !gotPhone || !gotHome {
		t.Errorf("mentions = %v; phone=%v home=%v", mentions, gotPhone, gotHome)
	}
}

func TestPagePhoneInsideMarkupAttrsIgnored(t *testing.T) {
	// A phone hidden in an attribute value is not page text.
	db, _ := entity.Generate(entity.Config{Domain: entity.Banks, N: 5, Seed: 3})
	e := db.Entities[0]
	x, _ := New(db, nil)
	html := `<div data-note="` + e.Phone.Format() + `">no phone in text</div>`
	for _, m := range x.Page([]byte(html)) {
		if m.Attr == entity.AttrPhone {
			t.Errorf("phone extracted from attribute: %v", m)
		}
	}
}

func TestPageBooks(t *testing.T) {
	db, _ := entity.Generate(entity.Config{Domain: entity.Books, N: 20, Seed: 4})
	x, _ := New(db, nil)
	b := db.Entities[4]
	html := fmt.Sprintf(`<html><body><h2>%s</h2><p>ISBN: %s</p></body></html>`,
		b.Name, entity.FormatISBN13(b.ISBN13))
	mentions := x.Page([]byte(html))
	if len(mentions) != 1 || mentions[0].EntityID != 4 || mentions[0].Attr != entity.AttrISBN {
		t.Errorf("mentions = %v", mentions)
	}
}

func TestPageReviewDetection(t *testing.T) {
	db, _ := entity.Generate(entity.Config{Domain: entity.Restaurants, N: 10, Seed: 5})
	nb := trainedClassifier(t)
	x, err := New(db, nb)
	if err != nil {
		t.Fatal(err)
	}
	e := db.Entities[0]
	rng := dist.NewRNG(7)

	reviewPage := fmt.Sprintf(`<html><body><h1>%s</h1><p>%s</p><p>%s</p></body></html>`,
		e.Name, e.Phone.Format(), textgen.Review(rng, e.Name, 8))
	infoPage := fmt.Sprintf(`<html><body><h1>%s</h1><p>%s</p><p>%s</p></body></html>`,
		e.Name, e.Phone.Format(), textgen.Boilerplate(rng, 8))

	var reviewHit, infoHit bool
	for _, m := range x.Page([]byte(reviewPage)) {
		if m.Attr == entity.AttrReview && m.EntityID == e.ID {
			reviewHit = true
		}
	}
	for _, m := range x.Page([]byte(infoPage)) {
		if m.Attr == entity.AttrReview {
			infoHit = true
		}
	}
	if !reviewHit {
		t.Error("review page not detected")
	}
	if infoHit {
		t.Error("boilerplate page classified as review")
	}
}

func TestPageReviewRequiresPhoneMatch(t *testing.T) {
	// §3.2: review detection runs over pages containing a matching
	// restaurant phone; a review-ish page with no phone yields nothing.
	db, _ := entity.Generate(entity.Config{Domain: entity.Restaurants, N: 10, Seed: 6})
	x, _ := New(db, trainedClassifier(t))
	rng := dist.NewRNG(8)
	html := "<html><body><p>" + textgen.Review(rng, "Unknown Cafe", 8) + "</p></body></html>"
	if mentions := x.Page([]byte(html)); len(mentions) != 0 {
		t.Errorf("review without phone should yield nothing: %v", mentions)
	}
}

func TestPageNoReviewAttrForNonRestaurants(t *testing.T) {
	db, _ := entity.Generate(entity.Config{Domain: entity.Banks, N: 10, Seed: 7})
	x, _ := New(db, trainedClassifier(t))
	e := db.Entities[0]
	rng := dist.NewRNG(9)
	html := fmt.Sprintf(`<html><body><p>%s</p><p>%s</p></body></html>`,
		e.Phone.Format(), textgen.Review(rng, e.Name, 8))
	for _, m := range x.Page([]byte(html)) {
		if m.Attr == entity.AttrReview {
			t.Errorf("review mention for a non-review domain: %v", m)
		}
	}
}

func TestTrainReviewClassifier(t *testing.T) {
	rng := dist.NewRNG(10)
	var pages [][]byte
	var labels []bool
	for i := 0; i < 50; i++ {
		pages = append(pages, []byte("<html><body>"+textgen.Review(rng, "X", 5)+"</body></html>"))
		labels = append(labels, true)
		pages = append(pages, []byte("<html><body>"+textgen.Boilerplate(rng, 5)+"</body></html>"))
		labels = append(labels, false)
	}
	nb, err := TrainReviewClassifier(pages, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !nb.Trained() {
		t.Error("classifier untrained after TrainReviewClassifier")
	}
	if _, err := TrainReviewClassifier(pages[:1], labels); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := TrainReviewClassifier(pages[:1], labels[:1]); err == nil {
		t.Error("single-class training should fail")
	}
}
