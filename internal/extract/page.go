package extract

import (
	"fmt"
	"sync"

	"repro/internal/classify"
	"repro/internal/entity"
	"repro/internal/htmlx"
)

// Mention records that a page mentions an entity via one attribute.
type Mention struct {
	EntityID int
	Attr     entity.Attr
}

// Extractor extracts entity mentions from pages for one domain database.
// The zero value is unusable; construct with New. An Extractor is safe
// for concurrent use once built (the classifier is read-only at
// extraction time). Page is the retained-DOM reference path; NewSession
// returns the streaming, allocation-free path that must produce
// identical mentions on rendered pages.
type Extractor struct {
	db         *entity.DB
	reviewClf  *classify.NaiveBayes // nil disables review detection
	reviewAttr bool                 // whether the domain studies reviews

	// The sessions' multi-pattern automaton over the database's rendered
	// attribute forms, built lazily so the DOM-only paths never pay for it.
	acOnce sync.Once
	ac     *AhoCorasick
	acErr  error
}

// automaton returns the domain's session automaton (phones for local
// businesses, ISBNs + markers for books), building it on first use.
func (x *Extractor) automaton() (*AhoCorasick, error) {
	x.acOnce.Do(func() {
		if x.db.Domain == entity.Books {
			x.ac, x.acErr = ISBNAutomaton(x.db)
		} else {
			x.ac, x.acErr = PhoneAutomaton(x.db)
		}
	})
	return x.ac, x.acErr
}

// New returns an Extractor for db. reviewClf may be nil when review
// detection is not required for the domain (it is only used for
// restaurants in the paper).
func New(db *entity.DB, reviewClf *classify.NaiveBayes) (*Extractor, error) {
	if db == nil {
		return nil, fmt.Errorf("extract: nil entity database")
	}
	if reviewClf != nil && !reviewClf.Trained() {
		return nil, fmt.Errorf("extract: review classifier is untrained")
	}
	hasReview := false
	for _, a := range entity.AttrsFor(db.Domain) {
		if a == entity.AttrReview {
			hasReview = true
		}
	}
	return &Extractor{db: db, reviewClf: reviewClf, reviewAttr: hasReview}, nil
}

// Page extracts all entity mentions from one HTML page. The extraction
// mirrors §3.2:
//
//   - phone: regex over the rendered page text,
//   - ISBN: digit runs with an "ISBN" marker in a window, over page text,
//   - homepage: href values of anchor elements matched against the DB,
//   - reviews: pages matching a restaurant phone are classified with
//     Naïve Bayes; a positive page yields a review mention for every
//     phone-matched entity on it.
func (x *Extractor) Page(html []byte) []Mention {
	doc := htmlx.Parse(html)
	text := doc.Text()
	var out []Mention

	if x.db.Domain == entity.Books {
		for _, id := range MatchISBNs(x.db, text) {
			out = append(out, Mention{EntityID: id, Attr: entity.AttrISBN})
		}
		return out
	}

	phoneIDs := MatchPhones(x.db, text)
	for _, id := range phoneIDs {
		out = append(out, Mention{EntityID: id, Attr: entity.AttrPhone})
	}

	seenHome := make(map[int]struct{})
	for _, href := range doc.Anchors() {
		if id, ok := x.db.LookupHomepage(href); ok {
			if _, dup := seenHome[id]; !dup {
				seenHome[id] = struct{}{}
				out = append(out, Mention{EntityID: id, Attr: entity.AttrHomepage})
			}
		}
	}

	if x.reviewAttr && x.reviewClf != nil && len(phoneIDs) > 0 {
		if isReview, err := x.reviewClf.Classify(text); err == nil && isReview {
			for _, id := range phoneIDs {
				out = append(out, Mention{EntityID: id, Attr: entity.AttrReview})
			}
		}
	}
	return out
}

// TrainReviewClassifier builds a review classifier from labeled example
// pages (HTML in, label = page is a review page). It is the materialized
// convenience form of Trainer, which streams pages without retaining
// them.
func TrainReviewClassifier(pages [][]byte, labels []bool) (*classify.NaiveBayes, error) {
	if len(pages) != len(labels) {
		return nil, fmt.Errorf("extract: %d pages vs %d labels", len(pages), len(labels))
	}
	tr := NewTrainer(1)
	for i, p := range pages {
		tr.Add(p, labels[i])
	}
	return tr.Classifier()
}
