package extract

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/entity"
)

func TestAhoCorasickValidation(t *testing.T) {
	if _, err := NewAhoCorasick(nil, nil); err == nil {
		t.Error("empty patterns should fail")
	}
	if _, err := NewAhoCorasick([]string{"a"}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewAhoCorasick([]string{"a", ""}, []int{1, 2}); err == nil {
		t.Error("empty pattern should fail")
	}
}

func TestAhoCorasickBasic(t *testing.T) {
	ac, err := NewAhoCorasick([]string{"he", "she", "his", "hers"}, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	matches := ac.FindAll("ushers")
	vals := make([]int, len(matches))
	for i, m := range matches {
		vals[i] = m.Value
	}
	sort.Ints(vals)
	// "ushers" contains "she" (1-4), "he" (2-4), "hers" (2-6).
	if !reflect.DeepEqual(vals, []int{1, 2, 4}) {
		t.Errorf("values = %v, want [1 2 4]", vals)
	}
}

func TestAhoCorasickOverlapping(t *testing.T) {
	ac, _ := NewAhoCorasick([]string{"aa", "aaa"}, []int{1, 2})
	matches := ac.FindAll("aaaa")
	// "aa" at 0-2,1-3,2-4 and "aaa" at 0-3,1-4: five hits.
	if len(matches) != 5 {
		t.Errorf("got %d matches, want 5: %v", len(matches), matches)
	}
}

func TestAhoCorasickFindValuesDedup(t *testing.T) {
	ac, _ := NewAhoCorasick([]string{"x"}, []int{7})
	got := ac.FindValues("xxxx")
	if !reflect.DeepEqual(got, []int{7}) {
		t.Errorf("FindValues = %v", got)
	}
}

func TestAhoCorasickNoMatch(t *testing.T) {
	ac, _ := NewAhoCorasick([]string{"needle"}, []int{1})
	if got := ac.FindAll(strings.Repeat("haystack ", 100)); len(got) != 0 {
		t.Errorf("unexpected matches: %v", got)
	}
}

func TestAhoCorasickMatchEndOffsets(t *testing.T) {
	ac, _ := NewAhoCorasick([]string{"cat"}, []int{1})
	matches := ac.FindAll("a cat and a cat")
	if len(matches) != 2 || matches[0].End != 5 || matches[1].End != 15 {
		t.Errorf("matches = %v", matches)
	}
}

func TestPhoneAutomatonAgreesWithRegexPath(t *testing.T) {
	db, err := entity.Generate(entity.Config{Domain: entity.Hotels, N: 100, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := PhoneAutomaton(db)
	if err != nil {
		t.Fatal(err)
	}
	e2, e9, e40 := db.Entities[2], db.Entities[9], db.Entities[40]
	text := "Contact " + e2.Phone.Format() + " or " + e9.Phone.FormatDotted() +
		" or even " + string(e40.Phone) + " for bookings. Unrelated: (999) 111-0000."

	regexIDs := MatchPhones(db, text)
	acIDs := ac.FindValues(text)
	sort.Ints(regexIDs)
	sort.Ints(acIDs)
	if !reflect.DeepEqual(regexIDs, acIDs) {
		t.Errorf("regex path %v != automaton path %v", regexIDs, acIDs)
	}
	if len(acIDs) != 3 {
		t.Errorf("expected 3 matches, got %v", acIDs)
	}
}

func TestPhoneAutomatonEmptyDB(t *testing.T) {
	db, _ := entity.Generate(entity.Config{Domain: entity.Books, N: 5, Seed: 22})
	if _, err := PhoneAutomaton(db); err == nil {
		t.Error("book db (no phones) should fail")
	}
}
