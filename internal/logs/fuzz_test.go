package logs

import "testing"

// FuzzParseEntityURL fuzzes the canonical fast path against the
// general regex parser over arbitrary byte strings — the property the
// table-driven TestParseCanonicalAgreesWithRegex spot-checks, pushed
// to every input shape the fuzzer can invent. Two invariants:
//
//  1. Whenever the fast path claims a parse, the regex parser must
//     produce the identical (site, key) — the fast path may only ever
//     defer, never disagree.
//  2. ParseEntityURL (fast path + fallback) is observably equivalent
//     to the regex parser alone on every input.
//
// Together these pin the fast path as a pure optimization: §4.1's URL
// patterns have exactly one observable semantics. CI runs this in the
// fuzz smoke alongside FuzzStreamVsParse.
func FuzzParseEntityURL(f *testing.F) {
	seeds := []string{
		"",
		"http://www.amazon.example.com/gp/product/B00A1B2C3D",
		"http://www.amazon.example.com/gp/product/B00A1B2C3D/ref=x",
		"http://www.amazon.example.com/gp/product/b00a1b2c3d",
		"http://www.amazon.example.com/gp/product/",
		"http://www.amazon.example.com/dp/B00A1B2C3D",
		"https://amazon.com/widgets/dp/B00A1B2C3D?tag=x",
		"http://www.yelp.example.com/biz/golden-kitchen-3",
		"http://www.yelp.example.com/biz/golden-kitchen-3/menu#top",
		"http://www.yelp.example.com/biz/",
		"http://www.yelp.example.com/biz/UPPER-case",
		"http://yelp.com/biz/cafe-x?osq=food",
		"http://www.imdb.example.com/title/tt0111161/",
		"http://www.imdb.example.com/title/tt011116123",
		"http://www.imdb.example.com/title/tt01111",
		"http://www.imdb.example.com/title/",
		"http://www.imdb.example.com/title/tt0111161x",
		"ftp://www.amazon.example.com/gp/product/B00A1B2C3D",
		"http://www.amazon.example.com/gp/product/B00A1B2C3D\x00junk",
		"www.yelp.example.com/biz/slug",
		"http://example.com/unrelated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, url string) {
		wantSite, wantKey, wantOK := parseEntityURLRegex(url)

		if site, key, ok := parseCanonical(url); ok {
			if !wantOK || site != wantSite || key != wantKey {
				t.Errorf("parseCanonical(%q) = (%q, %q, true), regex says (%q, %q, %v)",
					url, site, key, wantSite, wantKey, wantOK)
			}
		}

		gotSite, gotKey, gotOK := ParseEntityURL(url)
		if gotSite != wantSite || gotKey != wantKey || gotOK != wantOK {
			t.Errorf("ParseEntityURL(%q) = (%q, %q, %v), regex says (%q, %q, %v)",
				url, gotSite, gotKey, gotOK, wantSite, wantKey, wantOK)
		}
	})
}
