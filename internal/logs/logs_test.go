package logs

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestParseEntityURL(t *testing.T) {
	cases := []struct {
		url  string
		site Site
		key  string
		ok   bool
	}{
		{"http://www.amazon.example.com/gp/product/B00A1B2C3D", Amazon, "B00A1B2C3D", true},
		{"http://www.amazon.example.com/Widget-Pro/dp/B00A1B2C3D", Amazon, "B00A1B2C3D", true},
		{"http://www.amazon.example.com/gp/product/B00A1B2C3D?ref=sr_1", Amazon, "B00A1B2C3D", true},
		{"https://amazon.com/Some-Thing/dp/0306406152/ref=x", Amazon, "0306406152", true},
		{"http://www.yelp.example.com/biz/golden-kitchen-springfield-3", Yelp, "golden-kitchen-springfield-3", true},
		{"http://yelp.com/biz/cafe-x?osq=food", Yelp, "cafe-x", true},
		{"http://www.imdb.example.com/title/tt0111161/", IMDb, "tt0111161", true},
		{"http://imdb.com/title/tt01111612", IMDb, "tt01111612", true},
		{"http://www.amazon.example.com/gp/help/customer", "", "", false},
		{"http://www.yelp.example.com/events/some-event", "", "", false},
		{"http://www.imdb.example.com/name/nm0000151/", "", "", false},
		{"http://unrelated.example.com/biz/x", "", "", false},
		{"not a url at all", "", "", false},
	}
	for _, c := range cases {
		site, key, ok := ParseEntityURL(c.url)
		if site != c.site || key != c.key || ok != c.ok {
			t.Errorf("ParseEntityURL(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.url, site, key, ok, c.site, c.key, c.ok)
		}
	}
}

func TestEntityURLRoundTrip(t *testing.T) {
	cases := []struct {
		site Site
		key  string
	}{
		{Amazon, "B00A1B2C3D"},
		{Yelp, "biz-slug-42"},
		{IMDb, "tt0000043"},
	}
	for _, c := range cases {
		url, err := EntityURL(c.site, c.key)
		if err != nil {
			t.Fatal(err)
		}
		site, key, ok := ParseEntityURL(url)
		if !ok || site != c.site || key != c.key {
			t.Errorf("round trip %v/%v -> %q -> (%v, %v, %v)", c.site, c.key, url, site, key, ok)
		}
	}
	if _, err := EntityURL("ebay", "x"); err == nil {
		t.Error("unknown site should fail")
	}
}

func TestSourceAndSiteValidity(t *testing.T) {
	if !Search.Valid() || !Browse.Valid() || Source("other").Valid() {
		t.Error("Source.Valid broken")
	}
	if !Amazon.Valid() || !Yelp.Valid() || !IMDb.Valid() || Site("ebay").Valid() {
		t.Error("Site.Valid broken")
	}
	if len(Sites) != 3 {
		t.Error("Sites should list 3 sites")
	}
}

func TestClickLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	clicks := []Click{
		{Source: Search, Cookie: 42, Day: 100, URL: "http://yelp.com/biz/a"},
		{Source: Browse, Cookie: 7, Day: 0, URL: "http://imdb.com/title/tt0000001/"},
		{Source: Search, Cookie: 1 << 60, Day: 364, URL: "http://amazon.com/gp/product/B000000001"},
	}
	for _, c := range clicks {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range clicks {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("click %d: %v", i, err)
		}
		if got != want {
			t.Errorf("click %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestWriterRejectsBadSource(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Click{Source: "bogus"}); err == nil {
		t.Error("invalid source should fail")
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []string{
		"too\tfew\n",
		"bogus\t1\t2\thttp://x\n",
		"search\tNaN\t2\thttp://x\n",
		"search\t1\tNaN\thttp://x\n",
	}
	for _, c := range cases {
		r := NewReader(strings.NewReader(c))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("input %q should fail, got %v", c, err)
		}
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	r := NewReader(strings.NewReader("\n\nsearch\t1\t2\thttp://x\n\n"))
	c, err := r.Next()
	if err != nil || c.Cookie != 1 {
		t.Errorf("blank lines should skip: %+v %v", c, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestURLWithTabRejectedGracefully(t *testing.T) {
	// URLs never contain raw tabs in our pipeline; SplitN(4) keeps any
	// tail tabs inside the URL field rather than corrupting parsing.
	r := NewReader(strings.NewReader("search\t1\t2\thttp://x/a\tb\n"))
	c, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if c.URL != "http://x/a\tb" {
		t.Errorf("URL = %q", c.URL)
	}
}
