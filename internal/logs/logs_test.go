package logs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestParseEntityURL(t *testing.T) {
	cases := []struct {
		url  string
		site Site
		key  string
		ok   bool
	}{
		{"http://www.amazon.example.com/gp/product/B00A1B2C3D", Amazon, "B00A1B2C3D", true},
		{"http://www.amazon.example.com/Widget-Pro/dp/B00A1B2C3D", Amazon, "B00A1B2C3D", true},
		{"http://www.amazon.example.com/gp/product/B00A1B2C3D?ref=sr_1", Amazon, "B00A1B2C3D", true},
		{"https://amazon.com/Some-Thing/dp/0306406152/ref=x", Amazon, "0306406152", true},
		{"http://www.yelp.example.com/biz/golden-kitchen-springfield-3", Yelp, "golden-kitchen-springfield-3", true},
		{"http://yelp.com/biz/cafe-x?osq=food", Yelp, "cafe-x", true},
		{"http://www.imdb.example.com/title/tt0111161/", IMDb, "tt0111161", true},
		{"http://imdb.com/title/tt01111612", IMDb, "tt01111612", true},
		{"http://www.amazon.example.com/gp/help/customer", "", "", false},
		{"http://www.yelp.example.com/events/some-event", "", "", false},
		{"http://www.imdb.example.com/name/nm0000151/", "", "", false},
		{"http://unrelated.example.com/biz/x", "", "", false},
		{"not a url at all", "", "", false},
	}
	for _, c := range cases {
		site, key, ok := ParseEntityURL(c.url)
		if site != c.site || key != c.key || ok != c.ok {
			t.Errorf("ParseEntityURL(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.url, site, key, ok, c.site, c.key, c.ok)
		}
	}
}

// TestParseCanonicalAgreesWithRegex: for canonical-prefix URLs —
// well-formed, truncated, over-long, wrong-case, trailing-garbage —
// the fast path either agrees with the regex parser exactly or defers
// to it, so ParseEntityURL has one observable behavior.
func TestParseCanonicalAgreesWithRegex(t *testing.T) {
	urls := []string{
		"http://www.amazon.example.com/gp/product/B00A1B2C3D",
		"http://www.amazon.example.com/gp/product/B00A1B2C3D/ref=x",
		"http://www.amazon.example.com/gp/product/B00A1B2C3D?tag=y#frag",
		"http://www.amazon.example.com/gp/product/b00a1b2c3d",
		"http://www.amazon.example.com/gp/product/SHORT",
		"http://www.amazon.example.com/gp/product/TOOLONGKEY1",
		"http://www.amazon.example.com/gp/product/",
		"http://www.amazon.example.com/gp/product/lowercase00/dp/B00A1B2C3D",
		"http://www.yelp.example.com/biz/golden-kitchen-3",
		"http://www.yelp.example.com/biz/golden-kitchen-3?osq=food",
		"http://www.yelp.example.com/biz/golden-kitchen-3/menu",
		"http://www.yelp.example.com/biz/UPPER-case",
		"http://www.yelp.example.com/biz/",
		"http://www.yelp.example.com/biz/-",
		"http://www.imdb.example.com/title/tt0111161/",
		"http://www.imdb.example.com/title/tt01111612",
		"http://www.imdb.example.com/title/tt0111161#top",
		"http://www.imdb.example.com/title/tt011116123",
		"http://www.imdb.example.com/title/tt01111",
		"http://www.imdb.example.com/title/tt0111161x",
		"http://www.imdb.example.com/title/",
	}
	for _, u := range urls {
		wantSite, wantKey, wantOK := parseEntityURLRegex(u)
		gotSite, gotKey, gotOK := ParseEntityURL(u)
		if gotSite != wantSite || gotKey != wantKey || gotOK != wantOK {
			t.Errorf("ParseEntityURL(%q) = (%q, %q, %v), regex path says (%q, %q, %v)",
				u, gotSite, gotKey, gotOK, wantSite, wantKey, wantOK)
		}
		if site, key, ok := parseCanonical(u); ok {
			if site != wantSite || key != wantKey || !wantOK {
				t.Errorf("parseCanonical(%q) = (%q, %q) disagrees with regex (%q, %q, %v)",
					u, site, key, wantSite, wantKey, wantOK)
			}
		}
	}
}

// BenchmarkParseEntityURL contrasts the canonical fast path with the
// regex fallback — the demand aggregation hot path this PR optimizes.
func BenchmarkParseEntityURL(b *testing.B) {
	canonical := "http://www.yelp.example.com/biz/golden-kitchen-springfield-3"
	foreign := "http://yelp.com/biz/cafe-x?osq=food"
	b.Run("canonical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, ok := ParseEntityURL(canonical); !ok {
				b.Fatal("no parse")
			}
		}
	})
	b.Run("regex-fallback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, ok := ParseEntityURL(foreign); !ok {
				b.Fatal("no parse")
			}
		}
	})
}

func TestEntityURLRoundTrip(t *testing.T) {
	cases := []struct {
		site Site
		key  string
	}{
		{Amazon, "B00A1B2C3D"},
		{Yelp, "biz-slug-42"},
		{IMDb, "tt0000043"},
	}
	for _, c := range cases {
		url, err := EntityURL(c.site, c.key)
		if err != nil {
			t.Fatal(err)
		}
		site, key, ok := ParseEntityURL(url)
		if !ok || site != c.site || key != c.key {
			t.Errorf("round trip %v/%v -> %q -> (%v, %v, %v)", c.site, c.key, url, site, key, ok)
		}
	}
	if _, err := EntityURL("ebay", "x"); err == nil {
		t.Error("unknown site should fail")
	}
}

func TestSourceAndSiteValidity(t *testing.T) {
	if !Search.Valid() || !Browse.Valid() || Source("other").Valid() {
		t.Error("Source.Valid broken")
	}
	if !Amazon.Valid() || !Yelp.Valid() || !IMDb.Valid() || Site("ebay").Valid() {
		t.Error("Site.Valid broken")
	}
	if len(Sites) != 3 {
		t.Error("Sites should list 3 sites")
	}
}

func TestClickLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	clicks := []Click{
		{Source: Search, Cookie: 42, Day: 100, URL: "http://yelp.com/biz/a"},
		{Source: Browse, Cookie: 7, Day: 0, URL: "http://imdb.com/title/tt0000001/"},
		{Source: Search, Cookie: 1 << 60, Day: 364, URL: "http://amazon.com/gp/product/B000000001"},
	}
	for _, c := range clicks {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range clicks {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("click %d: %v", i, err)
		}
		if got != want {
			t.Errorf("click %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestWriterRejectsBadSource(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Click{Source: "bogus"}); err == nil {
		t.Error("invalid source should fail")
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []string{
		"too\tfew\n",
		"bogus\t1\t2\thttp://x\n",
		"search\tNaN\t2\thttp://x\n",
		"search\t1\tNaN\thttp://x\n",
	}
	for _, c := range cases {
		r := NewReader(strings.NewReader(c))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("input %q should fail, got %v", c, err)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("input %q: error %v should wrap ErrMalformed", c, err)
		}
	}
}

// TestReaderContinuesPastMalformedLine pins the skip contract behind
// ErrMalformed: the bad line is consumed, so the caller can keep
// reading and recover every well-formed click after it.
func TestReaderContinuesPastMalformedLine(t *testing.T) {
	r := NewReader(strings.NewReader(
		"search\t1\t2\thttp://x\n" +
			"garbage line\n" +
			"browse\t9\t3\thttp://y\n"))
	c, err := r.Next()
	if err != nil || c.Cookie != 1 {
		t.Fatalf("first click: %+v %v", c, err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("second line should be malformed, got %v", err)
	}
	c, err = r.Next()
	if err != nil || c.Cookie != 9 {
		t.Fatalf("third click after skip: %+v %v", c, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	r := NewReader(strings.NewReader("\n\nsearch\t1\t2\thttp://x\n\n"))
	c, err := r.Next()
	if err != nil || c.Cookie != 1 {
		t.Errorf("blank lines should skip: %+v %v", c, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestURLWithTabRejectedGracefully(t *testing.T) {
	// URLs never contain raw tabs in our pipeline; SplitN(4) keeps any
	// tail tabs inside the URL field rather than corrupting parsing.
	r := NewReader(strings.NewReader("search\t1\t2\thttp://x/a\tb\n"))
	c, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if c.URL != "http://x/a\tb" {
		t.Errorf("URL = %q", c.URL)
	}
}
