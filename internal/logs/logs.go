// Package logs models the study's demand data (§4.1): click logs from
// search (Yahoo! Search clicks) and browse (Yahoo! Toolbar) traffic,
// keyed by anonymized cookies, and the URL-pattern parsers that map a
// clicked URL to a structured entity on Amazon, Yelp or IMDb.
package logs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ErrMalformed tags line-level parse failures from Reader.Next: the
// offending line was fully consumed, so the reader is still positioned
// to continue and a replayer may skip the line (errors.Is) instead of
// aborting the whole log. I/O and scanner failures are NOT tagged —
// after those the stream is unrecoverable.
var ErrMalformed = errors.New("malformed click line")

// Source labels which traffic stream a click came from.
type Source string

// Traffic sources (§4.1).
const (
	Search Source = "search"
	Browse Source = "browse"
)

// Valid reports whether s is a known source.
func (s Source) Valid() bool { return s == Search || s == Browse }

// Site labels the three review-rich sites studied in §4.
type Site string

// Studied sites.
const (
	Amazon Site = "amazon"
	Yelp   Site = "yelp"
	IMDb   Site = "imdb"
)

// Sites lists the three sites in the paper's presentation order.
var Sites = []Site{Yelp, Amazon, IMDb}

// Valid reports whether s is a known site.
func (s Site) Valid() bool { return s == Amazon || s == Yelp || s == IMDb }

// Click is one logged visit: a cookie clicked a URL on some day.
type Click struct {
	Source Source
	Cookie uint64
	Day    int // 0-based day within the log year
	URL    string
}

// Entity URL patterns (§4.1): amazon.com/gp/product/[ID] or
// amazon.com/*/dp/[ID]; yelp.com/biz/[ID]; imdb.com/title/tt[ID].
var (
	amazonGpRe  = regexp.MustCompile(`/gp/product/([A-Z0-9]{10})(?:[/?#]|$)`)
	amazonDpRe  = regexp.MustCompile(`/dp/([A-Z0-9]{10})(?:[/?#]|$)`)
	yelpBizRe   = regexp.MustCompile(`/biz/([a-z0-9-]+?)(?:[/?#]|$)`)
	imdbTitleRe = regexp.MustCompile(`/title/(tt[0-9]{7,8})(?:[/?#]|$)`)
)

// Canonical entity-URL prefixes, exactly as EntityURL renders them. The
// demand pipeline parses millions of simulator-produced URLs per run;
// matching these prefixes directly skips the general regex machinery
// (nearly half the aggregation CPU in profiles) on the hot path.
const (
	amazonCanonicalPrefix = "http://www.amazon.example.com/gp/product/"
	yelpCanonicalPrefix   = "http://www.yelp.example.com/biz/"
	imdbCanonicalPrefix   = "http://www.imdb.example.com/title/"
)

// cutKey splits rest at the first URL separator (/, ? or #).
func cutKey(rest string) string {
	for i := 0; i < len(rest); i++ {
		if c := rest[i]; c == '/' || c == '?' || c == '#' {
			return rest[:i]
		}
	}
	return rest
}

func isAmazonKey(s string) bool {
	if len(s) != 10 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; (c < 'A' || c > 'Z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func isYelpSlug(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

func isIMDbKey(s string) bool {
	if len(s) < 9 || len(s) > 10 || s[0] != 't' || s[1] != 't' {
		return false
	}
	for i := 2; i < len(s); i++ {
		if c := s[i]; c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// parseCanonical is the fast path for canonical simulator URLs. A false
// return means only "not recognized here" — the caller falls through to
// the general regex parser, so the two paths always agree.
func parseCanonical(url string) (Site, string, bool) {
	switch {
	case strings.HasPrefix(url, amazonCanonicalPrefix):
		if key := cutKey(url[len(amazonCanonicalPrefix):]); isAmazonKey(key) {
			return Amazon, key, true
		}
	case strings.HasPrefix(url, yelpCanonicalPrefix):
		if key := cutKey(url[len(yelpCanonicalPrefix):]); isYelpSlug(key) {
			return Yelp, key, true
		}
	case strings.HasPrefix(url, imdbCanonicalPrefix):
		if key := cutKey(url[len(imdbCanonicalPrefix):]); isIMDbKey(key) {
			return IMDb, key, true
		}
	}
	return "", "", false
}

// ParseEntityURL maps a URL to (site, entity key). ok is false when the
// URL is not an entity page on any of the three sites.
func ParseEntityURL(url string) (Site, string, bool) {
	if site, key, ok := parseCanonical(url); ok {
		return site, key, ok
	}
	return parseEntityURLRegex(url)
}

// parseEntityURLRegex is the general pattern-based parser (§4.1's URL
// patterns), handling every host spelling and path shape the canonical
// fast path does not.
func parseEntityURLRegex(url string) (Site, string, bool) {
	host := hostOf(url)
	switch {
	case strings.Contains(host, "amazon"):
		if m := amazonGpRe.FindStringSubmatch(url); m != nil {
			return Amazon, m[1], true
		}
		if m := amazonDpRe.FindStringSubmatch(url); m != nil {
			return Amazon, m[1], true
		}
	case strings.Contains(host, "yelp"):
		if m := yelpBizRe.FindStringSubmatch(url); m != nil {
			return Yelp, m[1], true
		}
	case strings.Contains(host, "imdb"):
		if m := imdbTitleRe.FindStringSubmatch(url); m != nil {
			return IMDb, m[1], true
		}
	}
	return "", "", false
}

func hostOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// EntityURL renders the canonical entity URL for a site and key, the
// inverse of ParseEntityURL for simulator-produced keys.
func EntityURL(site Site, key string) (string, error) {
	switch site {
	case Amazon:
		return "http://www.amazon.example.com/gp/product/" + key, nil
	case Yelp:
		return "http://www.yelp.example.com/biz/" + key, nil
	case IMDb:
		return "http://www.imdb.example.com/title/" + key + "/", nil
	default:
		return "", fmt.Errorf("logs: unknown site %q", site)
	}
}

// Writer emits clicks as tab-separated lines
// (source, cookie, day, url).
type Writer struct {
	bw *bufio.Writer
}

// NewWriter returns a click-log writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriterSize(w, 1<<16)} }

// Write appends one click.
func (w *Writer) Write(c Click) error {
	if !c.Source.Valid() {
		return fmt.Errorf("logs: invalid source %q", c.Source)
	}
	if _, err := fmt.Fprintf(w.bw, "%s\t%d\t%d\t%s\n", c.Source, c.Cookie, c.Day, c.URL); err != nil {
		return fmt.Errorf("logs: write click: %w", err)
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("logs: flush: %w", err)
	}
	return nil
}

// Reader parses a click log written by Writer.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a click-log reader on r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &Reader{sc: sc}
}

// Next returns the next click, or io.EOF at end of input.
func (r *Reader) Next() (Click, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return Click{}, fmt.Errorf("logs: line %d has %d fields: %w", r.line, len(parts), ErrMalformed)
		}
		src := Source(parts[0])
		if !src.Valid() {
			return Click{}, fmt.Errorf("logs: line %d bad source %q: %w", r.line, parts[0], ErrMalformed)
		}
		cookie, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return Click{}, fmt.Errorf("logs: line %d cookie %q: %w", r.line, parts[1], ErrMalformed)
		}
		day, err := strconv.Atoi(parts[2])
		if err != nil {
			return Click{}, fmt.Errorf("logs: line %d day %q: %w", r.line, parts[2], ErrMalformed)
		}
		return Click{Source: src, Cookie: cookie, Day: day, URL: parts[3]}, nil
	}
	if err := r.sc.Err(); err != nil {
		return Click{}, fmt.Errorf("logs: scan: %w", err)
	}
	return Click{}, io.EOF
}
