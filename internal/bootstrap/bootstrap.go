// Package bootstrap implements the family of bootstrapping-based
// discovery algorithms the paper's §5 connectivity analysis upper-
// bounds (Flint, KnowItAll, set expansion): start from seed entities,
// find all sites covering a known entity (via a search engine in
// production; via the entity–host index here), adopt every entity on
// those sites, and iterate to a fixed point.
//
// The §5 claims this package lets you verify empirically:
//
//   - a "perfect" expansion reaches exactly the seed's connected
//     component, so the reachable fraction equals the largest-component
//     share for almost every seed;
//   - the number of iterations to fixpoint is at most ⌈d/2⌉ where d is
//     the graph diameter;
//   - random seed sets almost surely intersect the giant component.
package bootstrap

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/index"
)

// Round records the growth achieved by one expansion iteration.
type Round struct {
	NewSites    int
	NewEntities int
	// Totals after this round.
	TotalSites    int
	TotalEntities int
}

// Result is the outcome of one expansion run.
type Result struct {
	Rounds []Round
	// Entities and Sites are the reached sets; Entities[id] and
	// Sites[siteIdx] are true when reached.
	Entities []bool
	Sites    []bool
}

// ReachedEntities returns the number of entities reached.
func (r *Result) ReachedEntities() int {
	n := 0
	for _, ok := range r.Entities {
		if ok {
			n++
		}
	}
	return n
}

// ReachedSites returns the number of sites reached.
func (r *Result) ReachedSites() int {
	n := 0
	for _, ok := range r.Sites {
		if ok {
			n++
		}
	}
	return n
}

// Iterations returns the number of productive rounds (rounds that
// discovered something new).
func (r *Result) Iterations() int {
	n := 0
	for _, rd := range r.Rounds {
		if rd.NewSites > 0 || rd.NewEntities > 0 {
			n++
		}
	}
	return n
}

// Expander runs set expansion over one entity–host index. Building an
// Expander precomputes the entity→sites inverted lists, so repeated
// runs (seed-sensitivity experiments) are cheap.
type Expander struct {
	idx *index.Index
	// entitySites[e] lists site indices covering entity e.
	entitySites [][]int32
	numEntities int
}

// NewExpander prepares expansion over idx.
func NewExpander(idx *index.Index) (*Expander, error) {
	if idx == nil || len(idx.Sites) == 0 {
		return nil, fmt.Errorf("bootstrap: empty index")
	}
	maxID := idx.NumEntities
	for si := range idx.Sites {
		for _, e := range idx.Sites[si].Entities {
			if e < 0 {
				return nil, fmt.Errorf("bootstrap: negative entity id %d", e)
			}
			if e >= maxID {
				maxID = e + 1
			}
		}
	}
	x := &Expander{idx: idx, numEntities: maxID, entitySites: make([][]int32, maxID)}
	for si := range idx.Sites {
		for _, e := range idx.Sites[si].Entities {
			x.entitySites[e] = append(x.entitySites[e], int32(si))
		}
	}
	return x, nil
}

// NumEntities returns the entity ID space size.
func (x *Expander) NumEntities() int { return x.numEntities }

// Options tunes an expansion run.
type Options struct {
	// MaxRounds caps the number of iterations (<= 0: run to fixpoint).
	MaxRounds int
	// SiteBudget caps how many new sites may be discovered per round
	// (<= 0: unlimited). Models a bounded search-engine query budget;
	// budgeted runs need more rounds but reach the same component.
	SiteBudget int
}

// Expand runs the algorithm from the given seed entity IDs. Unknown or
// negative seeds are rejected.
func (x *Expander) Expand(seeds []int, opt Options) (*Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("bootstrap: no seeds")
	}
	res := &Result{
		Entities: make([]bool, x.numEntities),
		Sites:    make([]bool, len(x.idx.Sites)),
	}
	frontier := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= x.numEntities {
			return nil, fmt.Errorf("bootstrap: seed %d outside entity space [0, %d)", s, x.numEntities)
		}
		if !res.Entities[s] {
			res.Entities[s] = true
			frontier = append(frontier, s)
		}
	}
	totalEntities := len(frontier)
	totalSites := 0

	for round := 1; opt.MaxRounds <= 0 || round <= opt.MaxRounds; round++ {
		// Phase 1: discover sites covering any frontier entity.
		newSites := make([]int, 0, 64)
		for _, e := range frontier {
			for _, si := range x.entitySites[e] {
				if !res.Sites[si] {
					if opt.SiteBudget > 0 && len(newSites) >= opt.SiteBudget {
						continue
					}
					res.Sites[si] = true
					newSites = append(newSites, int(si))
				}
			}
		}
		// Phase 2: adopt every entity on the new sites.
		newFrontier := make([]int, 0, 64)
		for _, si := range newSites {
			for _, e := range x.idx.Sites[si].Entities {
				if !res.Entities[e] {
					res.Entities[e] = true
					newFrontier = append(newFrontier, e)
				}
			}
		}
		totalSites += len(newSites)
		totalEntities += len(newFrontier)
		res.Rounds = append(res.Rounds, Round{
			NewSites:      len(newSites),
			NewEntities:   len(newFrontier),
			TotalSites:    totalSites,
			TotalEntities: totalEntities,
		})
		if len(newSites) == 0 && len(newFrontier) == 0 {
			break
		}
		// With a site budget, entities already in the frontier may still
		// have undiscovered sites; keep them in play.
		if opt.SiteBudget > 0 {
			newFrontier = append(newFrontier, frontier...)
		}
		frontier = newFrontier
	}
	return res, nil
}

// SeedTrial summarizes one random-seed experiment run.
type SeedTrial struct {
	SeedSize int
	// ReachedFrac is reached entities / entities with at least one site.
	ReachedFrac float64
	Iterations  int
}

// SeedSensitivity runs `trials` expansions from random seed sets of the
// given size and reports the per-trial reach — the §5.3 argument that
// "any seed set of structured entities will contain, with high
// probability, at least one entity from the largest component".
func (x *Expander) SeedSensitivity(rng *dist.RNG, seedSize, trials int) ([]SeedTrial, error) {
	if seedSize <= 0 || trials <= 0 {
		return nil, fmt.Errorf("bootstrap: need positive seedSize and trials, got %d, %d", seedSize, trials)
	}
	// Denominator: entities with at least one covering site.
	connected := 0
	for e := 0; e < x.numEntities; e++ {
		if len(x.entitySites[e]) > 0 {
			connected++
		}
	}
	if connected == 0 {
		return nil, fmt.Errorf("bootstrap: index has no coverage at all")
	}
	out := make([]SeedTrial, 0, trials)
	for t := 0; t < trials; t++ {
		seeds := make([]int, seedSize)
		for i := range seeds {
			// Sample only entities that exist somewhere on the web; a
			// seed nobody mentions can never be expanded from.
			for {
				s := rng.Intn(x.numEntities)
				if len(x.entitySites[s]) > 0 {
					seeds[i] = s
					break
				}
			}
		}
		res, err := x.Expand(seeds, Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, SeedTrial{
			SeedSize:    seedSize,
			ReachedFrac: float64(res.ReachedEntities()) / float64(connected),
			Iterations:  res.Iterations(),
		})
	}
	return out, nil
}
