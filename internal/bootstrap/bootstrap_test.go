package bootstrap

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/entity"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/synth"
)

func mkIndex(t *testing.T, postings map[string][]int, numEntities int) *index.Index {
	t.Helper()
	b := index.NewBuilder(entity.Restaurants, entity.AttrPhone, numEntities)
	for host, ids := range postings {
		for _, id := range ids {
			b.Add(host, id)
		}
	}
	return b.Build()
}

func TestNewExpanderValidation(t *testing.T) {
	if _, err := NewExpander(nil); err == nil {
		t.Error("nil index should fail")
	}
	if _, err := NewExpander(&index.Index{NumEntities: 3}); err == nil {
		t.Error("empty index should fail")
	}
}

func TestExpandReachesComponent(t *testing.T) {
	// Two components: {0,1,2} via sites a,b and {3,4} via c.
	idx := mkIndex(t, map[string][]int{
		"a": {0, 1}, "b": {1, 2}, "c": {3, 4},
	}, 5)
	x, err := NewExpander(idx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.Expand([]int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachedEntities() != 3 {
		t.Errorf("reached %d entities, want 3", res.ReachedEntities())
	}
	if res.ReachedSites() != 2 {
		t.Errorf("reached %d sites, want 2", res.ReachedSites())
	}
	if res.Entities[3] || res.Entities[4] {
		t.Error("crossed into a disconnected component")
	}
	// From the other component.
	res2, err := x.Expand([]int{4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ReachedEntities() != 2 || res2.ReachedSites() != 1 {
		t.Errorf("component 2: %d entities, %d sites", res2.ReachedEntities(), res2.ReachedSites())
	}
}

func TestExpandValidation(t *testing.T) {
	idx := mkIndex(t, map[string][]int{"a": {0}}, 1)
	x, _ := NewExpander(idx)
	if _, err := x.Expand(nil, Options{}); err == nil {
		t.Error("no seeds should fail")
	}
	if _, err := x.Expand([]int{-1}, Options{}); err == nil {
		t.Error("negative seed should fail")
	}
	if _, err := x.Expand([]int{99}, Options{}); err == nil {
		t.Error("out-of-space seed should fail")
	}
}

func TestExpandMaxRounds(t *testing.T) {
	// Chain requiring 3 rounds; cap at 1.
	idx := mkIndex(t, map[string][]int{
		"a": {0, 1}, "b": {1, 2}, "c": {2, 3},
	}, 4)
	x, _ := NewExpander(idx)
	res, err := x.Expand([]int{0}, Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	if res.ReachedEntities() >= 4 {
		t.Error("one round should not reach the whole chain")
	}
}

func TestExpandIterationsBoundedByDiameter(t *testing.T) {
	// §5.2: iterations to fixpoint <= ceil(d/2) for seeds anywhere in
	// the component.
	web, err := synth.Generate(synth.Config{
		Domain: entity.Hotels, Entities: 500, DirectoryHosts: 800, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := web.DirectIndexes()[entity.AttrPhone]
	g, err := graph.FromIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	comps := g.AllComponents()
	d := g.DiameterLargest(comps)
	bound := (d + 1) / 2

	x, err := NewExpander(idx)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(5)
	for trial := 0; trial < 10; trial++ {
		seed := rng.Intn(x.NumEntities())
		if !comps.InLargest(seed) {
			continue
		}
		res, err := x.Expand([]int{seed}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Iterations(); got > bound+1 {
			// +1 slack: the final round that discovers the last sites
			// (but no entities) still counts as productive.
			t.Errorf("seed %d: %d iterations exceeds d/2 bound %d (d=%d)", seed, got, bound, d)
		}
		if res.ReachedEntities() < comps.LargestEntities {
			t.Errorf("seed %d: reached %d < largest component %d",
				seed, res.ReachedEntities(), comps.LargestEntities)
		}
	}
}

func TestExpandSiteBudgetSameFixpoint(t *testing.T) {
	web, err := synth.Generate(synth.Config{
		Domain: entity.Banks, Entities: 300, DirectoryHosts: 500, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := web.DirectIndexes()[entity.AttrPhone]
	x, err := NewExpander(idx)
	if err != nil {
		t.Fatal(err)
	}
	free, err := x.Expand([]int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := x.Expand([]int{0}, Options{SiteBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if free.ReachedEntities() != budgeted.ReachedEntities() {
		t.Errorf("budgeted reach %d != free reach %d",
			budgeted.ReachedEntities(), free.ReachedEntities())
	}
	if budgeted.Iterations() <= free.Iterations() {
		t.Errorf("budgeted run should need more rounds: %d vs %d",
			budgeted.Iterations(), free.Iterations())
	}
}

func TestSeedSensitivity(t *testing.T) {
	web, err := synth.Generate(synth.Config{
		Domain: entity.Retail, Entities: 400, DirectoryHosts: 700, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := web.DirectIndexes()[entity.AttrPhone]
	x, err := NewExpander(idx)
	if err != nil {
		t.Fatal(err)
	}
	trials, err := x.SeedSensitivity(dist.NewRNG(9), 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 20 {
		t.Fatalf("trials = %d", len(trials))
	}
	// §5.3: random seeds almost surely reach nearly everything.
	high := 0
	for _, tr := range trials {
		if tr.ReachedFrac > 0.9 {
			high++
		}
		if tr.Iterations < 1 {
			t.Errorf("trial with %d iterations", tr.Iterations)
		}
	}
	if high < 18 {
		t.Errorf("only %d/20 trials reached >90%% of entities", high)
	}
}

func TestSeedSensitivityValidation(t *testing.T) {
	idx := mkIndex(t, map[string][]int{"a": {0}}, 1)
	x, _ := NewExpander(idx)
	if _, err := x.SeedSensitivity(dist.NewRNG(1), 0, 5); err == nil {
		t.Error("seedSize=0 should fail")
	}
	if _, err := x.SeedSensitivity(dist.NewRNG(1), 1, 0); err == nil {
		t.Error("trials=0 should fail")
	}
}

func TestResultCountsConsistent(t *testing.T) {
	idx := mkIndex(t, map[string][]int{
		"a": {0, 1, 2}, "b": {2, 3}, "c": {3, 4},
	}, 6)
	x, _ := NewExpander(idx)
	res, err := x.Expand([]int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.TotalEntities != res.ReachedEntities() {
		t.Errorf("round totals %d != reached %d", last.TotalEntities, res.ReachedEntities())
	}
	if last.TotalSites != res.ReachedSites() {
		t.Errorf("site totals %d != reached %d", last.TotalSites, res.ReachedSites())
	}
}
