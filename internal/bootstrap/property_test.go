package bootstrap

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/entity"
	"repro/internal/index"
)

func randomIdx(seed uint64) *index.Index {
	rng := dist.NewRNG(seed)
	n := 10 + rng.Intn(80)
	b := index.NewBuilder(entity.Banks, entity.AttrPhone, n)
	sites := 2 + rng.Intn(25)
	for s := 0; s < sites; s++ {
		host := string([]byte{'h', byte('a' + s/26), byte('a' + s%26)}) + ".com"
		for j := 0; j < 1+rng.Intn(6); j++ {
			b.Add(host, rng.Intn(n))
		}
	}
	return b.Build()
}

// TestPropertyExpansionIsClosed: after an unbudgeted run, no unreached
// site covers a reached entity and no reached site has an unreached
// entity — the result is exactly a union of connected components.
func TestPropertyExpansionIsClosed(t *testing.T) {
	f := func(seed uint64, seedEntity uint16) bool {
		idx := randomIdx(seed)
		x, err := NewExpander(idx)
		if err != nil {
			return false
		}
		s := int(seedEntity) % x.NumEntities()
		res, err := x.Expand([]int{s}, Options{})
		if err != nil {
			return false
		}
		for si := range idx.Sites {
			covers := false
			allIn := true
			for _, e := range idx.Sites[si].Entities {
				if res.Entities[e] {
					covers = true
				} else {
					allIn = false
				}
			}
			if covers != res.Sites[si] {
				return false // reached iff it covers a reached entity
			}
			if res.Sites[si] && !allIn {
				return false // reached sites contribute all entities
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBudgetedMatchesUnbudgetedFixpoint: a site budget changes
// the schedule, never the fixpoint.
func TestPropertyBudgetedMatchesUnbudgetedFixpoint(t *testing.T) {
	f := func(seed uint64, seedEntity, budget8 uint8) bool {
		idx := randomIdx(seed)
		x, err := NewExpander(idx)
		if err != nil {
			return false
		}
		s := int(seedEntity) % x.NumEntities()
		budget := 1 + int(budget8)%5
		free, err := x.Expand([]int{s}, Options{})
		if err != nil {
			return false
		}
		bud, err := x.Expand([]int{s}, Options{SiteBudget: budget})
		if err != nil {
			return false
		}
		return free.ReachedEntities() == bud.ReachedEntities() &&
			free.ReachedSites() == bud.ReachedSites()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
