// Command serve exposes the study engine over HTTP: experiment results,
// demand estimates and spread curves as JSON/CSV, with a bounded
// multi-study LRU, deterministic ETags and full 304 revalidation.
//
// Usage:
//
//	serve -addr :8080 -studies 4 -timeout 2m -max-inflight 64
//
// Endpoints (all GET; ?scale=small|default|large, ?seed=N,
// ?extraction=bool select the study configuration):
//
//	/healthz                     liveness probe
//	/v1/experiments              registry metadata (id, title, needs)
//	/v1/experiments/{id}         one experiment's results (JSON envelope)
//	/v1/demand/{site}            per-entity demand estimates (json|csv)
//	/v1/spread/{domain}/{attr}   k-coverage curves (json|csv)
//	/v1/stats                    cache occupancy, build counters, timings
//	/metrics                     Prometheus text exposition: per-endpoint
//	                             latency histograms plus the process-wide
//	                             pipeline/segment/build series
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	studies := flag.Int("studies", 4, "study LRU capacity: how many (scale, seed, extraction) configurations stay warm")
	maxInflight := flag.Int("max-inflight", 64, "bound on concurrently served requests")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request budget")
	workers := flag.Int("workers", 0, "per-study artifact build workers (0: GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget for draining in-flight requests")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := serve.New(serve.Options{
		Studies:     *studies,
		MaxInFlight: *maxInflight,
		Timeout:     *timeout,
		Workers:     *workers,
		Logger:      log,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", ln.Addr().String())

	errc := make(chan error, 1)
	go func() { errc <- srv.Start(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Info("shutting down", "signal", sig.String(), "drain", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return <-errc
	}
}
