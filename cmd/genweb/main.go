// Command genweb generates the synthetic web corpus for one domain and
// writes it as a WARC archive plus a CDX capture index — the artifact a
// real crawler would hand to the extraction stage.
//
// Usage:
//
//	genweb -domain restaurants -entities 2000 -hosts 3000 -seed 1 \
//	       -out crawl.warc.gz -cdx crawl.cdx -gzip
//
// The entity database is regenerated deterministically from the same
// (domain, entities, seed) triple by cmd/extract; no separate DB file is
// needed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genweb:", err)
		os.Exit(1)
	}
}

func run() error {
	domain := flag.String("domain", "restaurants", "entity domain (books, restaurants, automotive, banks, libraries, schools, hotels, retail, homegarden)")
	entities := flag.Int("entities", synth.ScaleSmall.Entities, "entity database size")
	hosts := flag.Int("hosts", synth.ScaleSmall.DirectoryHosts, "directory host count")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("out", "crawl.warc", "output WARC path")
	cdxPath := flag.String("cdx", "", "optional CDX index path")
	gz := flag.Bool("gzip", false, "gzip each WARC record")
	flag.Parse()

	d, err := entity.ParseDomain(*domain)
	if err != nil {
		return err
	}
	web, err := synth.Generate(synth.Config{
		Domain:         d,
		Entities:       *entities,
		DirectoryHosts: *hosts,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer f.Close()
	cdx, err := core.WriteWARC(web, f, *gz)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", *out, err)
	}
	if *cdxPath != "" {
		cf, err := os.Create(*cdxPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *cdxPath, err)
		}
		defer cf.Close()
		if _, err := cdx.WriteTo(cf); err != nil {
			return err
		}
		if err := cf.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *cdxPath, err)
		}
	}
	fmt.Printf("wrote %s: domain=%s sites=%d listings=%d pages=%d review-pages=%d\n",
		*out, d, len(web.Sites), web.TotalListings(), len(cdx.Entries), web.TotalReviewPages())
	return nil
}
