// Command loadgen drives concurrent load against a running serve
// instance and reports throughput and latency quantiles — the harness
// behind the serving-layer numbers in the bench trajectory.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -clients 16 -n 2000 \
//	  -path /v1/experiments/fig3,/v1/demand/yelp -conditional
//
// A warmup pass (one uncounted request per endpoint) populates the
// server's caches and captures each endpoint's ETag; with -conditional
// every measured request then carries If-None-Match, exercising the
// 304 hot path. Compare against a cold run (fresh server, -conditional
// =false, distinct -seed) to see the cache's effect; BenchmarkServe in
// internal/serve records the same cold-vs-warm ratio in-process.
//
// Latencies aggregate into an obs.Histogram as they happen — clients
// write concurrently to one fixed-footprint log2 histogram instead of
// retaining every sample, so memory is constant at any -n or
// -duration. Quantiles are therefore bucket estimates (within 2x; the
// max is exact); the mean is exact. -json emits the same numbers as
// one machine-readable object for scripted runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// result is the -json wire document.
type result struct {
	Clients   int            `json:"clients"`
	Requests  int            `json:"requests"`
	ElapsedMS float64        `json:"elapsed_ms"`
	RPS       float64        `json:"rps"`
	Status    map[string]int `json:"status"`
	Errors    int            `json:"errors"`
	P50MS     float64        `json:"p50_ms"`
	P95MS     float64        `json:"p95_ms"`
	P99MS     float64        `json:"p99_ms"`
	MeanMS    float64        `json:"mean_ms"`
	MaxMS     float64        `json:"max_ms"`
}

func run() error {
	baseURL := flag.String("url", "http://localhost:8080", "server base URL")
	clients := flag.Int("clients", 8, "concurrent clients")
	total := flag.Int("n", 400, "total requests across all clients (ignored when -duration > 0)")
	duration := flag.Duration("duration", 0, "run for a fixed wall-clock time instead of a request count")
	paths := flag.String("path", "/v1/experiments/fig3", "comma-separated endpoint paths (each may carry its own query)")
	conditional := flag.Bool("conditional", true, "send If-None-Match with the warmup-captured ETag (exercises the 304 hot path)")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON result object instead of text")
	flag.Parse()

	endpoints := strings.Split(*paths, ",")
	for i := range endpoints {
		endpoints[i] = strings.TrimSpace(endpoints[i])
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	// Warmup: one request per endpoint populates the server's study and
	// body caches and captures the ETags for conditional mode.
	etags := make(map[string]string, len(endpoints))
	if !*jsonOut {
		fmt.Printf("warmup: %d endpoint(s)\n", len(endpoints))
	}
	for _, ep := range endpoints {
		t0 := time.Now()
		resp, err := client.Get(*baseURL + ep)
		if err != nil {
			return fmt.Errorf("warmup %s: %w", ep, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("warmup %s: status %d", ep, resp.StatusCode)
		}
		etags[ep] = resp.Header.Get("ETag")
		if !*jsonOut {
			fmt.Printf("  %-48s %8v  etag %s\n", ep, time.Since(t0).Round(time.Millisecond), etags[ep])
		}
	}

	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	next := func() (string, bool) {
		n := issued.Add(1) - 1
		if *duration > 0 {
			if time.Now().After(deadline) {
				return "", false
			}
		} else if n >= int64(*total) {
			return "", false
		}
		return endpoints[int(n)%len(endpoints)], true
	}

	// Clients observe straight into one concurrent histogram; only the
	// small per-status maps merge after the fact.
	hist := obs.NewRegistry().Histogram("loadgen_request_seconds", "request latency", 1e-9)
	var errCount atomic.Int64
	statusCh := make(chan map[int]int, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			byStatus := map[int]int{}
			for {
				ep, ok := next()
				if !ok {
					break
				}
				req, err := http.NewRequest(http.MethodGet, *baseURL+ep, nil)
				if err != nil {
					errCount.Add(1)
					continue
				}
				if *conditional {
					req.Header.Set("If-None-Match", etags[ep])
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					errCount.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hist.ObserveSince(t0)
				byStatus[resp.StatusCode]++
			}
			statusCh <- byStatus
		}()
	}
	wg.Wait()
	close(statusCh)
	elapsed := time.Since(start)

	byStatus := map[int]int{}
	for m := range statusCh {
		for code, n := range m {
			byStatus[code] += n
		}
	}
	errs := int(errCount.Load())
	requests := int(hist.Count()) + errs
	if requests == 0 {
		return fmt.Errorf("no requests issued")
	}

	msQ := func(q float64) float64 { return hist.Quantile(q) / 1e6 }
	res := result{
		Clients:   *clients,
		Requests:  requests,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		RPS:       float64(requests) / elapsed.Seconds(),
		Status:    make(map[string]int, len(byStatus)),
		Errors:    errs,
		P50MS:     msQ(0.50),
		P95MS:     msQ(0.95),
		P99MS:     msQ(0.99),
		MeanMS:    hist.Mean() / 1e6,
		MaxMS:     float64(hist.Max()) / 1e6,
	}
	for code, n := range byStatus {
		res.Status[strconv.Itoa(code)] = n
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(res)
	}
	fmt.Printf("\n%d clients, %d requests in %v → %.1f req/s\n",
		res.Clients, res.Requests, elapsed.Round(time.Millisecond), res.RPS)
	statuses := make([]int, 0, len(byStatus))
	for code := range byStatus {
		statuses = append(statuses, code)
	}
	sort.Ints(statuses)
	parts := make([]string, 0, len(statuses)+1)
	for _, code := range statuses {
		parts = append(parts, fmt.Sprintf("%d=%d", code, byStatus[code]))
	}
	parts = append(parts, fmt.Sprintf("errors=%d", errs))
	fmt.Printf("status: %s\n", strings.Join(parts, " "))
	if hist.Count() > 0 {
		fmt.Printf("latency: p50=%.3fms p95=%.3fms p99=%.3fms mean=%.3fms max=%.3fms (quantiles are log2-bucket estimates)\n",
			res.P50MS, res.P95MS, res.P99MS, res.MeanMS, res.MaxMS)
	}
	return nil
}
