// Command loadgen drives concurrent load against a running serve
// instance and reports throughput and latency quantiles — the harness
// behind the serving-layer numbers in the bench trajectory.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -clients 16 -n 2000 \
//	  -path /v1/experiments/fig3,/v1/demand/yelp -conditional
//
// A warmup pass (one uncounted request per endpoint) populates the
// server's caches and captures each endpoint's ETag; with -conditional
// every measured request then carries If-None-Match, exercising the
// 304 hot path. Compare against a cold run (fresh server, -conditional
// =false, distinct -seed) to see the cache's effect; BenchmarkServe in
// internal/serve records the same cold-vs-warm ratio in-process.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type sample struct {
	status int
	d      time.Duration
	err    bool
}

func run() error {
	baseURL := flag.String("url", "http://localhost:8080", "server base URL")
	clients := flag.Int("clients", 8, "concurrent clients")
	total := flag.Int("n", 400, "total requests across all clients (ignored when -duration > 0)")
	duration := flag.Duration("duration", 0, "run for a fixed wall-clock time instead of a request count")
	paths := flag.String("path", "/v1/experiments/fig3", "comma-separated endpoint paths (each may carry its own query)")
	conditional := flag.Bool("conditional", true, "send If-None-Match with the warmup-captured ETag (exercises the 304 hot path)")
	flag.Parse()

	endpoints := strings.Split(*paths, ",")
	for i := range endpoints {
		endpoints[i] = strings.TrimSpace(endpoints[i])
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	// Warmup: one request per endpoint populates the server's study and
	// body caches and captures the ETags for conditional mode.
	etags := make(map[string]string, len(endpoints))
	fmt.Printf("warmup: %d endpoint(s)\n", len(endpoints))
	for _, ep := range endpoints {
		t0 := time.Now()
		resp, err := client.Get(*baseURL + ep)
		if err != nil {
			return fmt.Errorf("warmup %s: %w", ep, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("warmup %s: status %d", ep, resp.StatusCode)
		}
		etags[ep] = resp.Header.Get("ETag")
		fmt.Printf("  %-48s %8v  etag %s\n", ep, time.Since(t0).Round(time.Millisecond), etags[ep])
	}

	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	next := func() (string, bool) {
		n := issued.Add(1) - 1
		if *duration > 0 {
			if time.Now().After(deadline) {
				return "", false
			}
		} else if n >= int64(*total) {
			return "", false
		}
		return endpoints[int(n)%len(endpoints)], true
	}

	samplesCh := make(chan []sample, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []sample
			for {
				ep, ok := next()
				if !ok {
					break
				}
				req, err := http.NewRequest(http.MethodGet, *baseURL+ep, nil)
				if err != nil {
					out = append(out, sample{err: true})
					continue
				}
				if *conditional {
					req.Header.Set("If-None-Match", etags[ep])
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					out = append(out, sample{err: true, d: time.Since(t0)})
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				out = append(out, sample{status: resp.StatusCode, d: time.Since(t0)})
			}
			samplesCh <- out
		}()
	}
	wg.Wait()
	close(samplesCh)
	elapsed := time.Since(start)

	var all []sample
	for s := range samplesCh {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests issued")
	}

	byStatus := map[int]int{}
	errs := 0
	durs := make([]time.Duration, 0, len(all))
	for _, s := range all {
		if s.err {
			errs++
			continue
		}
		byStatus[s.status]++
		durs = append(durs, s.d)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	q := func(p float64) time.Duration {
		if len(durs) == 0 {
			return 0
		}
		i := int(p * float64(len(durs)-1))
		return durs[i]
	}

	fmt.Printf("\n%d clients, %d requests in %v → %.1f req/s\n",
		*clients, len(all), elapsed.Round(time.Millisecond),
		float64(len(all))/elapsed.Seconds())
	statuses := make([]int, 0, len(byStatus))
	for code := range byStatus {
		statuses = append(statuses, code)
	}
	sort.Ints(statuses)
	parts := make([]string, 0, len(statuses)+1)
	for _, code := range statuses {
		parts = append(parts, fmt.Sprintf("%d=%d", code, byStatus[code]))
	}
	parts = append(parts, fmt.Sprintf("errors=%d", errs))
	fmt.Printf("status: %s\n", strings.Join(parts, " "))
	if len(durs) > 0 {
		fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
			q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), durs[len(durs)-1].Round(time.Microsecond))
	}
	return nil
}
