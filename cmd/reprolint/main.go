// Command reprolint statically enforces the repository's runtime
// contracts: zero-allocation hot paths (//repro:noalloc), deterministic
// packages (no time.Now / global rand / order-leaking map iteration),
// batch-amortized obs instrumentation, and failpoint-site hygiene.
//
// It runs two ways:
//
//	reprolint [packages]                 # standalone whole-repo mode
//	go vet -vettool=$(which reprolint) ./...   # per-package vet units
//
// Standalone mode loads the module from the current directory and adds
// the cross-package failpoint-uniqueness check that per-package vet
// units cannot see. Exit codes follow vet: 0 clean, 1 error,
// 2 diagnostics.
//
// Each analyzer can be disabled with -<name>=false, or the run can be
// restricted by naming analyzers: -noalloc -failpoint runs only those.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The two metadata queries cmd/go issues before running any unit.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		// The format cmd/go's buildid parser accepts from an unstamped
		// analysis tool (same line x/tools' unitchecker prints).
		fmt.Println("reprolint version devel comments-go-here buildID=01234567890123456789012345678901")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var fs []jsonFlag
		for _, a := range lint.Analyzers() {
			fs = append(fs, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, err := json.Marshal(fs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}

	fset := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fset.SetOutput(os.Stderr)
	enabled := make(map[string]*bool)
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fset.Bool(a.Name, false, a.Doc)
	}
	if err := fset.Parse(args); err != nil {
		return 1
	}
	// Vet semantics: naming any analyzer restricts the run to the named
	// set; otherwise everything runs.
	analyzers := lint.Analyzers()
	anySet := false
	fset.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			anySet = true
		}
	})
	if anySet {
		analyzers = nil
		for _, a := range lint.Analyzers() {
			if *enabled[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
	}

	rest := fset.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunUnit(rest[0], analyzers, os.Stderr)
	}

	// Standalone whole-repo mode.
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 1
	}
	res, err := lint.RunRepo(dir, rest...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		return 1
	}
	diags := res.Diags
	if anySet {
		kept := diags[:0]
		names := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			names[a.Name] = true
		}
		for _, d := range diags {
			if names[d.Analyzer] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if len(diags) > 0 {
		lint.PrintDiags(os.Stderr, res.Fset, diags)
		return 2
	}
	return 0
}
