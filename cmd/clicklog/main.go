// Command clicklog generates and aggregates the §4 demand logs as
// files. The file boundary is where the demand layer's internal
// zero-string ClickRef representation persists: either materialized to
// the TSV wire format (-format tsv) and resolved back on replay — agg
// recognizes canonical simulator URLs with one interned-map hit and
// falls back to the general §4.1 URL patterns for everything else — or
// written as a columnar ClickRef segment store (-format seg,
// internal/seg: per-column varint/RLE blocks with per-segment zone
// maps), which replays straight into the shard routers with no URL
// ever formatted or parsed and a working set of one segment, whatever
// the log size.
//
// Generate a year of search+browse traffic for one site (clicks are
// synthesized by -gen parallel workers over leapfrog RNG substreams and
// written in canonical stream order, so the file is byte-identical for
// any worker count):
//
//	clicklog gen -site yelp -n 5000 -events 200000 -seed 1 -gen 8 -out clicks.tsv
//	clicklog gen -site yelp -n 5000 -events 200000 -seed 1 -format seg -out clicks.seg
//
// Generation is crash-safe: the stream is written to a temp file that
// is fsynced (per -fsync: always fsyncs each flushed segment too;
// close, the default, fsyncs once before publish; off skips
// durability) and atomically renamed into place — with the directory
// fsynced — only after a clean finish. Only successfully written
// clicks are counted, and a generation that fails mid-stream (the
// clicklog/gen/emit failpoint injects exactly this in tests) leaves
// neither the output path nor a temp file behind.
//
// Aggregate a log back into per-entity demand across -shards concurrent
// shard workers and print the demand distribution summary (the input
// format is sniffed from the file magic; -format overrides):
//
//	clicklog agg -site yelp -n 5000 -seed 1 -shards 8 -in clicks.tsv
//	clicklog agg -site yelp -n 5000 -seed 1 -in clicks.seg -src browse -days 0:90
//
// Segment replay takes pushdown predicates — -src, -days lo:hi,
// -entities lo:hi — and skips whole segments whose zone maps cannot
// match, reporting scanned vs skipped counts. A damaged segment log
// (torn tail, corrupt block) fails a strict replay; -salvage opens it
// with seg.OpenSalvage instead, folding the CRC-valid prefix and
// reporting quarantined segment counts alongside scanned/skipped. TSV replay skips
// malformed lines with a counter (use -strict to abort on the first
// bad line instead) and reports parsed vs aggregated vs dropped
// (non-entity) vs malformed separately. -cookies hints the known
// cookie population so heavily-visited entities count distinct cookies
// in a dense bitmap (demand.SetCookieHint) instead of a growing table.
//
// Replay drives the sharded aggregator's single-producer entry points:
// clicks (or decoded ref batches) are emitted from this command's one
// reader goroutine, as ShardedAggregator.Feed/FeedRefs require —
// parallelism lives behind the emit, in the resolver pool and shard
// workers, not in front of it.
//
// The (site, n, seed) triple must match between gen and agg so the
// catalog (and its URL keys) regenerates identically.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/demand"
	"repro/internal/fail"
	"repro/internal/fsx"
	"repro/internal/logs"
	"repro/internal/obs"
	"repro/internal/seg"
	"repro/internal/stats"
)

// fpEmit fires before each click is handed to the output writer:
// arming it injects mid-stream generation failures, the fault the
// atomic temp-file cleanup contract is tested against.
var fpEmit = fail.Register("clicklog/gen/emit")

// traceTo enables span recording when path is non-empty and returns
// the dump-at-exit func for the caller to defer.
func traceTo(path string) func() {
	if path == "" {
		return func() {}
	}
	obs.EnableTracing(0)
	return func() {
		if err := obs.WriteTraceFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "clicklog: write trace:", err)
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: clicklog <gen|agg> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "agg":
		err = runAgg(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (gen, agg)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clicklog:", err)
		os.Exit(1)
	}
}

func catalogFor(site string, n int, seed uint64) (*demand.Catalog, error) {
	s := logs.Site(site)
	if !s.Valid() {
		return nil, fmt.Errorf("unknown site %q (amazon, yelp, imdb)", site)
	}
	return demand.GenerateCatalog(demand.SiteDefaults(s, n, seed))
}

// genOptions parameterizes one generation run — the flag-free form the
// CLI test drives directly.
type genOptions struct {
	site    string
	n       int
	events  int
	cookies int
	seed    uint64
	gen     int
	out     string
	format  string // tsv | seg
	segRows int
	fsync   string // always | close | off ("": close)
}

// generate writes the simulated click stream for o to o.out and
// returns the number of clicks successfully written. The count
// increments only after the writer accepts a click — a failed write is
// not reported as written. The stream goes to an fsx temp file and is
// atomically renamed to o.out (with fsync per o.fsync) only after a
// clean finish: a crash or mid-stream error — including one injected
// at the clicklog/gen/emit failpoint — leaves neither a truncated
// o.out nor a stray temp file.
func generate(o genOptions) (count uint64, err error) {
	if o.format != "tsv" && o.format != "seg" {
		return 0, fmt.Errorf("unknown -format %q (tsv, seg)", o.format)
	}
	policy := fsx.SyncClose
	if o.fsync != "" {
		if policy, err = fsx.ParseSyncPolicy(o.fsync); err != nil {
			return 0, err
		}
	}
	cat, err := catalogFor(o.site, o.n, o.seed)
	if err != nil {
		return 0, err
	}
	af, err := fsx.CreateAtomic(o.out, policy)
	if err != nil {
		return 0, err
	}
	committed := false
	defer func() {
		if !committed {
			af.Abort()
		}
	}()
	cfg := demand.SimConfig{Events: o.events, Cookies: o.cookies, Seed: o.seed ^ 0x51b}
	p := demand.PipelineConfig{Generators: o.gen}
	switch o.format {
	case "tsv":
		w := logs.NewWriter(af)
		if err := demand.GenerateOrdered(cat, cfg, p, func(c logs.Click) error {
			if ferr := fpEmit.Fail(); ferr != nil {
				return ferr
			}
			if err := w.Write(c); err != nil {
				return err
			}
			count++
			return nil
		}); err != nil {
			return count, err
		}
		if err := w.Flush(); err != nil {
			return count, err
		}
	case "seg":
		// The segment writer sees the AtomicFile directly, so under
		// -fsync always its per-segment BatchSync bounds data loss to
		// one segment rather than the whole run.
		sw := seg.NewWriter(af, o.segRows)
		if err := demand.GenerateOrderedRefs(cat, cfg, p, func(r demand.ClickRef) error {
			if ferr := fpEmit.Fail(); ferr != nil {
				return ferr
			}
			if err := sw.Add(r); err != nil {
				return err
			}
			count++
			return nil
		}); err != nil {
			return count, err
		}
		if err := sw.Close(); err != nil {
			return count, err
		}
	}
	if err := af.Commit(); err != nil {
		return count, err
	}
	committed = true
	return count, nil
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	o := genOptions{}
	fs.StringVar(&o.site, "site", "yelp", "site: amazon, yelp, imdb")
	fs.IntVar(&o.n, "n", 5000, "catalog size")
	fs.IntVar(&o.events, "events", 0, "clicks per source (0: 40x catalog)")
	fs.IntVar(&o.cookies, "cookies", 0, "cookie population (0: 8x catalog)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed")
	fs.IntVar(&o.gen, "gen", 0, "generator workers (0: all cores)")
	fs.StringVar(&o.out, "out", "clicks.tsv", "output log path")
	fs.StringVar(&o.format, "format", "tsv", "output format: tsv (wire log) or seg (columnar segments)")
	fs.IntVar(&o.segRows, "segrows", 0, "refs per segment for -format seg (0: default)")
	fs.StringVar(&o.fsync, "fsync", "close", "durability before the atomic rename: always (also fsync each flushed segment), close, off")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of pipeline spans to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer traceTo(*trace)()
	count, err := generate(o)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d clicks for %s (catalog %d entities) to %s (%s)\n",
		count, o.site, o.n, o.out, o.format)
	return nil
}

// aggOptions parameterizes one replay — the flag-free form the CLI
// test drives directly.
type aggOptions struct {
	site     string
	n        int
	seed     uint64
	shards   int
	in       string
	format   string // auto | tsv | seg
	cookies  int    // cookie-population hint, 0 = none
	strict   bool   // abort on first malformed TSV line
	salvage  bool   // segment input: recover the CRC-valid prefix of a damaged file
	src      string // "" | search | browse
	days     string // "" | "lo:hi" inclusive
	entities string // "" | "lo:hi" inclusive
}

// aggResult carries the aggregates plus the replay accounting the
// summary prints: parsed vs dropped vs malformed for TSV, zone-map
// scan/skip counts for segments.
type aggResult struct {
	sa        *demand.ShardedAggregator
	format    string
	parsed    uint64 // TSV lines parsed as clicks
	resolved  uint64 // clicks resolved to catalog entities and folded
	dropped   uint64 // clicks dropped: non-entity URL / foreign site
	malformed uint64 // TSV lines skipped as malformed
	segStats  seg.ReplayStats
}

// parseRange parses an inclusive "lo:hi" bound.
func parseRange(s string) (lo, hi int64, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("range %q: want lo:hi", s)
	}
	if lo, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", s, err)
	}
	if hi, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", s, err)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q: hi < lo", s)
	}
	return lo, hi, nil
}

// predicateFor builds the segment pushdown predicate from the option
// strings; hasPred reports whether any narrowing flag was set.
func predicateFor(o aggOptions) (p seg.Predicate, hasPred bool, err error) {
	p = seg.All()
	if o.src != "" {
		si, ok := demand.SourceIndex(logs.Source(o.src))
		if !ok {
			return p, false, fmt.Errorf("unknown -src %q (search, browse)", o.src)
		}
		p = p.WithSrc(si)
		hasPred = true
	}
	if o.days != "" {
		lo, hi, err := parseRange(o.days)
		if err != nil {
			return p, false, fmt.Errorf("-days %w", err)
		}
		p = p.WithDays(int16(lo), int16(hi))
		hasPred = true
	}
	if o.entities != "" {
		lo, hi, err := parseRange(o.entities)
		if err != nil {
			return p, false, fmt.Errorf("-entities %w", err)
		}
		p = p.WithEntities(int32(lo), int32(hi))
		hasPred = true
	}
	return p, hasPred, nil
}

// sniffFormat resolves format "auto" by the file's leading magic.
func sniffFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	magic := make([]byte, len(seg.HeaderMagic()))
	if n, _ := io.ReadFull(f, magic); n == len(magic) && string(magic) == string(seg.HeaderMagic()) {
		return "seg", nil
	}
	return "tsv", nil
}

// aggregate replays o.in into a fresh sharded aggregator.
func aggregate(o aggOptions) (*aggResult, error) {
	if o.shards <= 0 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	format := o.format
	if format == "" || format == "auto" {
		var err error
		if format, err = sniffFormat(o.in); err != nil {
			return nil, err
		}
	}
	pred, hasPred, err := predicateFor(o)
	if err != nil {
		return nil, err
	}
	cat, err := catalogFor(o.site, o.n, o.seed)
	if err != nil {
		return nil, err
	}
	sa := demand.NewShardedAggregator(cat, o.shards)
	if o.cookies > 0 {
		sa.SetCookieHint(o.cookies)
	}
	res := &aggResult{sa: sa, format: format}

	switch format {
	case "seg":
		open := seg.OpenFile
		if o.salvage {
			open = seg.OpenSalvage
		}
		r, err := open(o.in)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		emit, done := sa.FeedRefs()
		st, err := r.Replay(pred, emit)
		done()
		if err != nil {
			return nil, err
		}
		res.segStats = st
		res.parsed = st.Rows
		res.resolved = st.Matched
		return res, nil
	case "tsv":
		if hasPred {
			return nil, fmt.Errorf("pushdown flags (-src, -days, -entities) need a segment input; %s is tsv", o.in)
		}
		if o.salvage {
			return nil, fmt.Errorf("-salvage needs a segment input; %s is tsv", o.in)
		}
		f, err := os.Open(o.in)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", o.in, err)
		}
		defer f.Close()
		emit, done := sa.Feed()
		r := logs.NewReader(f)
		for {
			c, err := r.Next()
			if err == io.EOF {
				break
			}
			if errors.Is(err, logs.ErrMalformed) {
				if o.strict {
					done()
					return nil, err
				}
				res.malformed++
				continue
			}
			if err != nil {
				done()
				return nil, err
			}
			res.parsed++
			emit(c)
		}
		done()
		res.resolved, res.dropped = sa.FeedStats()
		return res, nil
	default:
		return nil, fmt.Errorf("unknown -format %q (auto, tsv, seg)", o.format)
	}
}

// aggSummary is runAgg's machine-readable replay accounting: the
// replay/feed stats plus the process-wide obs counters, so bench
// scripts parse ONE line instead of scraping the human text. Emitted
// as key=value pairs in text mode and as a JSON object behind -json.
type aggSummary struct {
	Format    string             `json:"format"`
	Input     string             `json:"input"`
	Shards    int                `json:"shards"`
	Parsed    uint64             `json:"parsed"`
	Resolved  uint64             `json:"resolved"`
	Dropped   uint64             `json:"dropped"`
	Malformed uint64             `json:"malformed"`
	Replay    *seg.ReplayStats   `json:"replay,omitempty"` // segment inputs only
	Obs       map[string]float64 `json:"obs"`
	Demand    []demandSummary    `json:"demand"`
}

type demandSummary struct {
	Source   string   `json:"source"`
	Top20Pct float64  `json:"top20_share_pct"`
	Gini     float64  `json:"gini"`
	ZipfS    *float64 `json:"zipf_s,omitempty"`
}

// obsSnapshot flattens obs.Default into name→value, keeping only the
// series this pipeline moves (demand_/seg_ prefixes) so the summary
// stays readable.
func obsSnapshot() map[string]float64 {
	out := map[string]float64{}
	for _, s := range obs.Default.Snapshot() {
		if strings.HasPrefix(s.Name, "repro_demand_") || strings.HasPrefix(s.Name, "repro_seg_") {
			out[s.Name] = s.Value
		}
	}
	return out
}

// summaryLine renders the stable key=value form of the summary (one
// line, fixed key order; obs keys sorted).
func summaryLine(s aggSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary format=%s shards=%d parsed=%d resolved=%d dropped=%d malformed=%d",
		s.Format, s.Shards, s.Parsed, s.Resolved, s.Dropped, s.Malformed)
	if s.Replay != nil {
		fmt.Fprintf(&b, " segments=%d skipped=%d quarantined=%d rows=%d matched=%d",
			s.Replay.Segments, s.Replay.Skipped, s.Replay.Quarantined, s.Replay.Rows, s.Replay.Matched)
	}
	keys := make([]string, 0, len(s.Obs))
	for k := range s.Obs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", strings.TrimPrefix(k, "repro_"),
			strconv.FormatFloat(s.Obs[k], 'g', -1, 64))
	}
	return b.String()
}

func runAgg(args []string) error {
	fs := flag.NewFlagSet("agg", flag.ExitOnError)
	o := aggOptions{}
	fs.StringVar(&o.site, "site", "yelp", "site: amazon, yelp, imdb")
	fs.IntVar(&o.n, "n", 5000, "catalog size (must match gen)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed (must match gen)")
	fs.IntVar(&o.shards, "shards", 0, "aggregation shard workers (0: all cores)")
	fs.StringVar(&o.in, "in", "clicks.tsv", "input log path")
	fs.StringVar(&o.format, "format", "auto", "input format: auto (sniff magic), tsv, seg")
	fs.IntVar(&o.cookies, "cookies", 0, "known cookie population hint (0: none) — enables bitmap distinct counting")
	fs.BoolVar(&o.strict, "strict", false, "abort on the first malformed line instead of skipping it")
	fs.BoolVar(&o.salvage, "salvage", false, "segment input: recover the CRC-valid prefix of a damaged log instead of failing")
	fs.StringVar(&o.src, "src", "", "segment pushdown: keep one source (search or browse)")
	fs.StringVar(&o.days, "days", "", "segment pushdown: keep days lo:hi (inclusive)")
	fs.StringVar(&o.entities, "entities", "", "segment pushdown: keep entity indexes lo:hi (inclusive)")
	jsonOut := fs.Bool("json", false, "emit the structured summary as one JSON object instead of text")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of replay spans to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer traceTo(*trace)()
	res, err := aggregate(o)
	if err != nil {
		return err
	}
	sum := aggSummary{
		Format:    res.format,
		Input:     o.in,
		Shards:    res.sa.Shards(),
		Parsed:    res.parsed,
		Resolved:  res.resolved,
		Dropped:   res.dropped,
		Malformed: res.malformed,
		Obs:       obsSnapshot(),
	}
	if res.format == "seg" {
		st := res.segStats
		sum.Replay = &st
	}
	for _, src := range []logs.Source{logs.Search, logs.Browse} {
		vec := demand.UniqueVector(res.sa.Demand(src))
		d := demandSummary{
			Source:   string(src),
			Top20Pct: 100 * demand.TopShare(vec, 0.2),
			Gini:     stats.Gini(vec),
		}
		if s, err := stats.ZipfExponentFromRanks(vec, 500); err == nil {
			d.ZipfS = &s
		}
		sum.Demand = append(sum.Demand, d)
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(sum)
	}
	switch res.format {
	case "seg":
		st := res.segStats
		fmt.Printf("replayed %s (seg): %d refs folded of %d decoded; %d/%d segments scanned, %d skipped by zone maps; %d shards\n",
			o.in, res.resolved, st.Rows, st.Segments-st.Skipped, st.Segments, st.Skipped, res.sa.Shards())
		if st.Quarantined > 0 {
			fmt.Printf("salvage: %d corrupt segment(s) quarantined; demand below covers the surviving prefix only\n", st.Quarantined)
		}
		fmt.Println()
	default:
		fmt.Printf("replayed %s (tsv): %d clicks parsed — %d aggregated, %d dropped (non-entity), %d malformed lines skipped; %d shards\n\n",
			o.in, res.parsed, res.resolved, res.dropped, res.malformed, res.sa.Shards())
	}
	for _, d := range sum.Demand {
		line := fmt.Sprintf("%s: top-20%% share %.1f%%, gini %.2f", d.Source, d.Top20Pct, d.Gini)
		if d.ZipfS != nil {
			line += fmt.Sprintf(", fitted zipf s=%.2f", *d.ZipfS)
		}
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println(summaryLine(sum))
	return nil
}
