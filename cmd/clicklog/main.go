// Command clicklog generates and aggregates the §4 demand logs as
// files. The file boundary is where the demand layer's internal
// zero-string ClickRef representation materializes to the TSV wire
// format (gen) and resolves back from it (agg) — agg recognizes
// canonical simulator URLs with one interned-map hit and falls back to
// the general §4.1 URL patterns for everything else.
//
// Generate a year of search+browse traffic for one site (clicks are
// synthesized by -gen parallel workers over leapfrog RNG substreams and
// written in canonical stream order, so the file is byte-identical for
// any worker count):
//
//	clicklog gen -site yelp -n 5000 -events 200000 -seed 1 -gen 8 -out clicks.tsv
//
// Aggregate a log back into per-entity demand across -shards concurrent
// shard workers and print the demand distribution summary:
//
//	clicklog agg -site yelp -n 5000 -seed 1 -shards 8 -in clicks.tsv
//
// The (site, n, seed) triple must match between gen and agg so the
// catalog (and its URL keys) regenerates identically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/demand"
	"repro/internal/logs"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: clicklog <gen|agg> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "agg":
		err = runAgg(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (gen, agg)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clicklog:", err)
		os.Exit(1)
	}
}

func catalogFor(site string, n int, seed uint64) (*demand.Catalog, error) {
	s := logs.Site(site)
	if !s.Valid() {
		return nil, fmt.Errorf("unknown site %q (amazon, yelp, imdb)", site)
	}
	return demand.GenerateCatalog(demand.SiteDefaults(s, n, seed))
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	site := fs.String("site", "yelp", "site: amazon, yelp, imdb")
	n := fs.Int("n", 5000, "catalog size")
	events := fs.Int("events", 0, "clicks per source (0: 40x catalog)")
	cookies := fs.Int("cookies", 0, "cookie population (0: 8x catalog)")
	seed := fs.Uint64("seed", 1, "seed")
	gen := fs.Int("gen", 0, "generator workers (0: all cores)")
	out := fs.String("out", "clicks.tsv", "output log path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, err := catalogFor(*site, *n, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer f.Close()
	w := logs.NewWriter(f)
	count := 0
	err = demand.GenerateOrdered(cat, demand.SimConfig{
		Events: *events, Cookies: *cookies, Seed: *seed ^ 0x51b,
	}, demand.PipelineConfig{Generators: *gen}, func(c logs.Click) error {
		count++
		return w.Write(c)
	})
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", *out, err)
	}
	fmt.Printf("wrote %d clicks for %s (catalog %d entities) to %s\n", count, *site, *n, *out)
	return nil
}

func runAgg(args []string) error {
	fs := flag.NewFlagSet("agg", flag.ExitOnError)
	site := fs.String("site", "yelp", "site: amazon, yelp, imdb")
	n := fs.Int("n", 5000, "catalog size (must match gen)")
	seed := fs.Uint64("seed", 1, "seed (must match gen)")
	shards := fs.Int("shards", 0, "aggregation shard workers (0: all cores)")
	in := fs.String("in", "clicks.tsv", "input log path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards <= 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	cat, err := catalogFor(*site, *n, *seed)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("open %s: %w", *in, err)
	}
	defer f.Close()
	agg := demand.NewShardedAggregator(cat, *shards)
	emit, done := agg.Feed()
	r := logs.NewReader(f)
	lines := 0
	for {
		c, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			done()
			return err
		}
		lines++
		emit(c)
	}
	done()
	fmt.Printf("aggregated %d clicks from %s across %d shards\n\n", lines, *in, agg.Shards())
	for _, src := range []logs.Source{logs.Search, logs.Browse} {
		vec := demand.UniqueVector(agg.Demand(src))
		top20 := demand.TopShare(vec, 0.2)
		gini := stats.Gini(vec)
		line := fmt.Sprintf("%s: top-20%% share %.1f%%, gini %.2f", src, 100*top20, gini)
		if s, err := stats.ZipfExponentFromRanks(vec, 500); err == nil {
			line += fmt.Sprintf(", fitted zipf s=%.2f", s)
		}
		fmt.Println(line)
	}
	return nil
}
