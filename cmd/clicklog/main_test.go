package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/demand"
	"repro/internal/fail"
	"repro/internal/logs"
)

// demandBytes serializes both sources' demand vectors — the byte-level
// identity the format round-trip tests pin.
func demandBytes(t *testing.T, sa *demand.ShardedAggregator) []byte {
	t.Helper()
	out := map[string][]demand.Estimate{}
	for _, src := range []logs.Source{logs.Search, logs.Browse} {
		out[string(src)] = sa.Demand(src)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var testGen = genOptions{
	site: "yelp", n: 120, events: 4000, cookies: 600, seed: 9, gen: 4,
	segRows: 256,
}

// TestGenAggIdentityAcrossFormats: the same simulation written as TSV
// and as columnar segments replays — with format sniffed from the file
// magic — to byte-identical demand aggregates. The segment path never
// touches a URL; agreeing with the parse-the-wire-log path end to end
// is the correctness bar for the whole seg layer.
func TestGenAggIdentityAcrossFormats(t *testing.T) {
	dir := t.TempDir()
	tsv, segf := filepath.Join(dir, "clicks.tsv"), filepath.Join(dir, "clicks.seg")

	ot := testGen
	ot.format, ot.out = "tsv", tsv
	nTSV, err := generate(ot)
	if err != nil {
		t.Fatal(err)
	}
	osg := testGen
	osg.format, osg.out = "seg", segf
	nSeg, err := generate(osg)
	if err != nil {
		t.Fatal(err)
	}
	if nTSV == 0 || nTSV != nSeg {
		t.Fatalf("gen counts: tsv=%d seg=%d, want equal and nonzero", nTSV, nSeg)
	}

	agg := func(in string) *aggResult {
		res, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, shards: 4, in: in})
		if err != nil {
			t.Fatalf("aggregate %s: %v", in, err)
		}
		return res
	}
	rt, rs := agg(tsv), agg(segf)
	if rt.format != "tsv" || rs.format != "seg" {
		t.Fatalf("sniffed formats (%q, %q), want (tsv, seg)", rt.format, rs.format)
	}
	if rs.segStats.Rows != nSeg || rs.segStats.Skipped != 0 {
		t.Fatalf("seg replay stats %+v, want %d rows, 0 skipped", rs.segStats, nSeg)
	}
	if rt.parsed != nTSV || rt.malformed != 0 {
		t.Fatalf("tsv replay parsed=%d malformed=%d, want %d, 0", rt.parsed, rt.malformed, nTSV)
	}
	if bt, bs := demandBytes(t, rt.sa), demandBytes(t, rs.sa); string(bt) != string(bs) {
		t.Fatal("TSV and segment replay produced different demand aggregates")
	}
}

// TestPushdownSkipsSegments: a source predicate must observably skip
// segments via zone maps. The generator emits the search stream then
// the browse stream as contiguous runs, so every segment except the
// boundary one is source-pure and -src search must prune roughly the
// browse half — while leaving search demand bit-identical to the
// unfiltered replay and browse demand exactly zero.
func TestPushdownSkipsSegments(t *testing.T) {
	dir := t.TempDir()
	segf := filepath.Join(dir, "clicks.seg")
	o := testGen
	o.format, o.out, o.segRows = "seg", segf, 64
	if _, err := generate(o); err != nil {
		t.Fatal(err)
	}

	base := aggOptions{site: "yelp", n: 120, seed: 9, shards: 2, in: segf}
	full, err := aggregate(base)
	if err != nil {
		t.Fatal(err)
	}
	filt := base
	filt.src = "search"
	res, err := aggregate(filt)
	if err != nil {
		t.Fatal(err)
	}
	if res.segStats.Skipped == 0 {
		t.Fatalf("source pushdown skipped 0 of %d segments; zone maps not pruning", res.segStats.Segments)
	}
	for i, e := range res.sa.Demand(logs.Browse) {
		if e.Visits != 0 {
			t.Fatalf("entity %d has %d browse visits after -src search", i, e.Visits)
		}
	}
	wantSearch, gotSearch := full.sa.Demand(logs.Search), res.sa.Demand(logs.Search)
	for i := range wantSearch {
		if wantSearch[i] != gotSearch[i] {
			t.Fatalf("entity %d search demand %+v != unfiltered %+v", i, gotSearch[i], wantSearch[i])
		}
	}
}

// TestPushdownRejectedOnTSV: predicate flags require a segment input.
func TestPushdownRejectedOnTSV(t *testing.T) {
	dir := t.TempDir()
	tsv := filepath.Join(dir, "clicks.tsv")
	o := testGen
	o.format, o.out, o.events = "tsv", tsv, 200
	if _, err := generate(o); err != nil {
		t.Fatal(err)
	}
	_, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, in: tsv, src: "search"})
	if err == nil {
		t.Fatal("pushdown on tsv input should fail")
	}
}

// TestMalformedLineHandling: by default one garbage line is skipped and
// counted, every well-formed click around it still aggregates; -strict
// aborts on it instead.
func TestMalformedLineHandling(t *testing.T) {
	dir := t.TempDir()
	tsv := filepath.Join(dir, "clicks.tsv")
	o := testGen
	o.format, o.out, o.events = "tsv", tsv, 300
	n, err := generate(o)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(tsv, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("this line is garbage\nsearch\t12\t3\thttp://other.example.com/x\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, in: tsv})
	if err != nil {
		t.Fatal(err)
	}
	if res.malformed != 1 {
		t.Fatalf("malformed = %d, want 1", res.malformed)
	}
	if res.parsed != n+1 {
		t.Fatalf("parsed = %d, want %d generated + 1 appended", res.parsed, n+1)
	}
	if res.resolved+res.dropped != res.parsed || res.dropped == 0 {
		t.Fatalf("resolved %d + dropped %d must partition parsed %d, with the foreign URL dropped",
			res.resolved, res.dropped, res.parsed)
	}

	if _, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, in: tsv, strict: true}); !errors.Is(err, logs.ErrMalformed) {
		t.Fatalf("-strict should abort with ErrMalformed, got %v", err)
	}
}

// TestFailedGenLeavesNoFile: a generation failing mid-stream (fault
// injected at the clicklog/gen/emit failpoint after 50 clean emits)
// leaves neither the output path nor the atomic temp file, for both
// formats and every fsync policy; the reported count stays at the
// successfully-written total.
func TestFailedGenLeavesNoFile(t *testing.T) {
	for _, format := range []string{"tsv", "seg"} {
		for _, fsync := range []string{"always", "close", "off"} {
			dir := t.TempDir()
			o := testGen
			o.format, o.fsync, o.out = format, fsync, filepath.Join(dir, "clicks.out")
			fail.Arm("clicklog/gen/emit", fail.Action{Kind: fail.Error, Skip: 50, Times: 1})
			count, err := generate(o)
			fail.Disarm("clicklog/gen/emit")
			if !errors.Is(err, fail.ErrInjected) {
				t.Fatalf("%s/%s: err = %v, want injected failure", format, fsync, err)
			}
			if count != 50 {
				t.Fatalf("%s/%s: count = %d, want exactly the 50 successful writes", format, fsync, count)
			}
			ents, readErr := os.ReadDir(dir)
			if readErr != nil {
				t.Fatal(readErr)
			}
			if len(ents) != 0 {
				t.Fatalf("%s/%s: failed gen left files behind: %v", format, fsync, ents)
			}
		}
	}
}

// TestGenFsyncAlwaysPublishes: the strictest durability policy still
// produces a byte-valid, replayable segment log at the final path.
func TestGenFsyncAlwaysPublishes(t *testing.T) {
	dir := t.TempDir()
	o := testGen
	o.format, o.fsync, o.out = "seg", "always", filepath.Join(dir, "clicks.seg")
	n, err := generate(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(o.out + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file survived a committed gen")
	}
	res, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, in: o.out})
	if err != nil {
		t.Fatal(err)
	}
	if res.segStats.Rows != n {
		t.Fatalf("replayed %d rows, want %d", res.segStats.Rows, n)
	}
}

// TestAggSalvageDamagedSegments: damaged segment logs fail a strict
// replay but recover under -salvage. Two damage shapes: a torn tail
// (crash before the directory sealed — the forward scan keeps the
// intact prefix, nothing to quarantine) and one corrupt payload byte
// under an intact directory (the bad segment is quarantined, the rest
// replay). -salvage on TSV input is rejected.
func TestAggSalvageDamagedSegments(t *testing.T) {
	dir := t.TempDir()
	segf := filepath.Join(dir, "clicks.seg")
	o := testGen
	o.format, o.out, o.segRows = "seg", segf, 64
	n, err := generate(o)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(segf)
	if err != nil {
		t.Fatal(err)
	}

	strictFails := func(in string) {
		t.Helper()
		if _, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, shards: 2, in: in}); err == nil {
			t.Fatal("strict replay of a damaged segment file should fail")
		}
	}
	salvaged := func(in string) *aggResult {
		t.Helper()
		res, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, shards: 2, in: in, salvage: true})
		if err != nil {
			t.Fatalf("salvage replay: %v", err)
		}
		return res
	}

	// Torn tail: the file loses its directory and its last segments;
	// salvage keeps the longest valid prefix.
	torn := filepath.Join(dir, "torn.seg")
	if err := os.WriteFile(torn, orig[:len(orig)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	strictFails(torn)
	res := salvaged(torn)
	if res.segStats.Rows == 0 || res.segStats.Rows >= n {
		t.Fatalf("torn-tail salvage kept %d rows of %d generated, want a nonzero strict prefix", res.segStats.Rows, n)
	}

	// One flipped payload byte in the first segment, directory intact:
	// exactly that segment is quarantined, every other row replays.
	bad := append([]byte(nil), orig...)
	bad[100] ^= 0xff
	flip := filepath.Join(dir, "flip.seg")
	if err := os.WriteFile(flip, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	strictFails(flip)
	res = salvaged(flip)
	if res.segStats.Quarantined != 1 {
		t.Fatalf("corrupt-payload salvage quarantined %d segments, want 1", res.segStats.Quarantined)
	}
	if res.segStats.Rows != n-64 {
		t.Fatalf("corrupt-payload salvage kept %d rows, want %d (all but the 64-row bad segment)", res.segStats.Rows, n-64)
	}

	tsv := filepath.Join(dir, "clicks.tsv")
	ot := testGen
	ot.format, ot.out = "tsv", tsv
	if _, err := generate(ot); err != nil {
		t.Fatal(err)
	}
	if _, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, in: tsv, salvage: true}); err == nil {
		t.Fatal("-salvage on tsv input should be rejected")
	}
}

// TestGenRejectsBadFsync: an invalid -fsync value fails before any
// file is created.
func TestGenRejectsBadFsync(t *testing.T) {
	dir := t.TempDir()
	o := testGen
	o.format, o.fsync, o.out = "tsv", "sometimes", filepath.Join(dir, "x")
	if _, err := generate(o); err == nil {
		t.Fatal("bad fsync policy should fail")
	}
	if _, err := os.Stat(o.out); !os.IsNotExist(err) {
		t.Fatal("failed validation must not create the output file")
	}
}

// TestGenRejectsBadOptions: option validation errors before any file
// is created.
func TestGenRejectsBadOptions(t *testing.T) {
	dir := t.TempDir()
	o := testGen
	o.out = filepath.Join(dir, "x")
	o.format = "parquet"
	if _, err := generate(o); err == nil {
		t.Fatal("unknown format should fail")
	}
	o.format = "tsv"
	o.site = "ebay"
	if _, err := generate(o); err == nil {
		t.Fatal("unknown site should fail")
	}
	if _, err := os.Stat(o.out); !os.IsNotExist(err) {
		t.Fatal("failed option validation must not create the output file")
	}
}

// TestCookieHint: the -cookies bitmap hint must not change any
// estimate, only the counting structure.
func TestCookieHint(t *testing.T) {
	dir := t.TempDir()
	segf := filepath.Join(dir, "clicks.seg")
	o := testGen
	o.format, o.out = "seg", segf
	if _, err := generate(o); err != nil {
		t.Fatal(err)
	}
	plain, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, in: segf})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := aggregate(aggOptions{site: "yelp", n: 120, seed: 9, in: segf, cookies: 600})
	if err != nil {
		t.Fatal(err)
	}
	if p, h := demandBytes(t, plain.sa), demandBytes(t, hinted.sa); string(p) != string(h) {
		t.Fatal("-cookies hint changed demand estimates")
	}
}
