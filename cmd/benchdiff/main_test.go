package main

import (
	"strings"
	"testing"
)

func file(rows ...Result) *File {
	return &File{Schema: "bench/v1", Results: rows}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := file(
		Result{Name: "BenchmarkA", NsPerOp: 100},
		Result{Name: "BenchmarkB", NsPerOp: 1000},
		Result{Name: "BenchmarkC", NsPerOp: 500},
	)
	new := file(
		Result{Name: "BenchmarkA", NsPerOp: 121},  // +21% — regressed
		Result{Name: "BenchmarkB", NsPerOp: 1190}, // +19% — within budget
		Result{Name: "BenchmarkC", NsPerOp: 250},  // improvement
	)
	deltas, onlyOld, onlyNew := Compare(old, new, 20, 0)
	if len(deltas) != 3 || len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Fatalf("deltas=%d onlyOld=%v onlyNew=%v", len(deltas), onlyOld, onlyNew)
	}
	got := map[string]bool{}
	for _, d := range deltas {
		got[d.Name] = d.Regressed
	}
	if !got["BenchmarkA"] {
		t.Error("+21% should regress at a 20% gate")
	}
	if got["BenchmarkB"] {
		t.Error("+19% should pass a 20% gate")
	}
	if got["BenchmarkC"] {
		t.Error("an improvement should never regress")
	}
	// Sorted worst-first.
	if deltas[0].Name != "BenchmarkA" {
		t.Errorf("worst delta first, got %s", deltas[0].Name)
	}
}

func TestCompareDisjointNamesNeverFail(t *testing.T) {
	old := file(Result{Name: "BenchmarkGone", NsPerOp: 10})
	new := file(Result{Name: "BenchmarkNew", NsPerOp: 99999})
	deltas, onlyOld, onlyNew := Compare(old, new, 20, 0)
	if len(deltas) != 0 {
		t.Fatalf("nothing comparable, got %d deltas", len(deltas))
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

func TestCompareZeroOldNsSkipped(t *testing.T) {
	old := file(Result{Name: "BenchmarkZ", NsPerOp: 0})
	new := file(Result{Name: "BenchmarkZ", NsPerOp: 50})
	deltas, _, _ := Compare(old, new, 20, 0)
	if len(deltas) != 0 {
		t.Fatalf("zero-baseline row must be skipped, got %+v", deltas)
	}
}

// TestCompareCarriesMemoryColumns: the paired rows ride on the delta
// so MB/op, allocs/op, and bytes/click render beside the verdict, and
// none of them gate — only ns/op does.
func TestCompareCarriesMemoryColumns(t *testing.T) {
	old := file(Result{Name: "BenchmarkM", NsPerOp: 100, BytesPerOp: 1e6, AllocsPerOp: 9000, BytesPerClick: 64})
	new := file(Result{Name: "BenchmarkM", NsPerOp: 100, BytesPerOp: 9e6, AllocsPerOp: 45, BytesPerClick: 59})
	deltas, _, _ := Compare(old, new, 20, 0)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %d, want 1", len(deltas))
	}
	d := deltas[0]
	if d.Regressed {
		t.Error("memory columns moving must not trip the ns/op gate")
	}
	if d.Old.BytesPerOp != 1e6 || d.New.BytesPerOp != 9e6 {
		t.Errorf("bytes/op pair = %v -> %v", d.Old.BytesPerOp, d.New.BytesPerOp)
	}
	if d.Old.AllocsPerOp != 9000 || d.New.AllocsPerOp != 45 {
		t.Errorf("allocs/op pair = %v -> %v", d.Old.AllocsPerOp, d.New.AllocsPerOp)
	}
	if d.Old.BytesPerClick != 64 || d.New.BytesPerClick != 59 {
		t.Errorf("bytes/click pair = %v -> %v", d.Old.BytesPerClick, d.New.BytesPerClick)
	}
	for _, want := range []string{"MB/op", "allocs/op", "bytes/click"} {
		if cols := sideCols(d.Old, d.New); !strings.Contains(cols, want) {
			t.Errorf("sideCols %q missing %s", cols, want)
		}
	}
	if cols := sideCols(Result{NsPerOp: 1}, Result{NsPerOp: 2}); cols != "" {
		t.Errorf("rows without memory stats should render no side columns, got %q", cols)
	}
}

func TestCompareBoundaryIsExclusive(t *testing.T) {
	old := file(Result{Name: "BenchmarkE", NsPerOp: 100})
	new := file(Result{Name: "BenchmarkE", NsPerOp: 120})
	deltas, _, _ := Compare(old, new, 20, 0)
	if deltas[0].Regressed {
		t.Error("exactly +20% at a 20% gate should pass (gate is >, not >=)")
	}
}
