// Command benchdiff compares two bench/v1 JSON snapshots (the
// BENCH_<PR>.json files scripts/bench.sh emits) and fails when a named
// benchmark regressed. It is the regression gate the bench trajectory
// was missing: BENCH files recorded each PR's numbers, but nothing
// compared consecutive runs, which is how PR 2 shipped a pipeline
// slower than the serial fold without anyone noticing. CI runs
//
//	benchdiff -max-regress 20 BENCH_4.json /tmp/BENCH_ci.json
//
// after every bench run, failing the build when any benchmark present
// in both files got more than 20% slower (ns/op). Benchmarks that
// appear in only one file are reported but never fail the gate —
// renames and new rows are how the trajectory grows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// File is the bench/v1 schema scripts/bench.sh writes.
type File struct {
	Schema    string   `json:"schema"`
	Go        string   `json:"go"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// Result is one benchmark row.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// BytesPerClick is the demand rows' modelled aggregation-state
	// traffic per click (Aggregator.BytesMoved / clicks), recorded
	// since BENCH_6.
	BytesPerClick float64 `json:"bytes_per_click,omitempty"`
}

// Delta is one compared benchmark. Only the ns/op movement gates; the
// old and new rows ride along so the report can show how allocation
// and modelled-bandwidth columns moved with it — a row that got faster
// by moving more memory is worth seeing, not failing.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Pct       float64 // (new-old)/old * 100; positive = slower
	Regressed bool
	Old, New  Result
}

// Compare pairs benchmarks by name and flags those whose ns/op grew by
// more than maxRegressPct. Rows whose baseline runs faster than minNs
// are compared but never flagged: micro-benchmarks (microseconds per
// op) vary well past any sane threshold at smoke-test iteration
// counts, and gating on them would make the gate cry wolf.
func Compare(old, new *File, maxRegressPct, minNs float64) (deltas []Delta, onlyOld, onlyNew []string) {
	oldByName := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	newNames := make(map[string]bool, len(new.Results))
	for _, r := range new.Results {
		newNames[r.Name] = true
		o, ok := oldByName[r.Name]
		if !ok {
			onlyNew = append(onlyNew, r.Name)
			continue
		}
		if o.NsPerOp <= 0 {
			continue
		}
		pct := (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		deltas = append(deltas, Delta{
			Name:      r.Name,
			OldNs:     o.NsPerOp,
			NewNs:     r.NsPerOp,
			Pct:       pct,
			Regressed: pct > maxRegressPct && o.NsPerOp >= minNs,
			Old:       o,
			New:       r,
		})
	}
	for _, r := range old.Results {
		if !newNames[r.Name] {
			onlyOld = append(onlyOld, r.Name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Pct > deltas[j].Pct })
	return deltas, onlyOld, onlyNew
}

// sideCols renders the informational columns — MB/op, allocs/op, and
// the demand rows' modelled bytes/click — for row pairs that carry
// them. These never gate: allocation and modelled-traffic shifts are
// expected when layouts change, and the point of printing them beside
// the ns/op verdict is to show what a time movement cost (or bought)
// in memory terms.
func sideCols(o, n Result) string {
	s := ""
	if o.BytesPerOp > 0 || n.BytesPerOp > 0 {
		s += fmt.Sprintf("  %8.2f -> %8.2f MB/op", o.BytesPerOp/1e6, n.BytesPerOp/1e6)
	}
	if o.AllocsPerOp > 0 || n.AllocsPerOp > 0 {
		s += fmt.Sprintf("  %7.0f -> %7.0f allocs/op", o.AllocsPerOp, n.AllocsPerOp)
	}
	if o.BytesPerClick > 0 || n.BytesPerClick > 0 {
		s += fmt.Sprintf("  %6.2f -> %6.2f bytes/click", o.BytesPerClick, n.BytesPerClick)
	}
	return s
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "bench/v1" {
		return nil, fmt.Errorf("%s: schema %q, want bench/v1", path, f.Schema)
	}
	return &f, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 20, "max allowed ns/op regression in percent")
	minNs := flag.Float64("min-ns", 0, "only gate on benchmarks whose baseline is at least this many ns/op")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-max-regress PCT] [-min-ns NS] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldF, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newF, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	deltas, onlyOld, onlyNew := Compare(oldF, newF, *maxRegress, *minNs)
	failed := 0
	for _, d := range deltas {
		mark := " "
		if d.Regressed {
			mark = "!"
			failed++
		}
		fmt.Printf("%s %-55s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n", mark, d.Name, d.OldNs, d.NewNs, d.Pct, sideCols(d.Old, d.New))
	}
	for _, n := range onlyOld {
		fmt.Printf("- %-55s only in %s\n", n, flag.Arg(0))
	}
	for _, n := range onlyNew {
		fmt.Printf("+ %-55s only in %s\n", n, flag.Arg(1))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%%\n", failed, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d compared, none regressed more than %.0f%%\n", len(deltas), *maxRegress)
}
