// Command webrepro is the one-shot reproduction: it runs every table
// and figure of "An Analysis of Structured Data on the Web" (Dalvi,
// Machanavajjhala, Pang — VLDB 2012) over the synthetic-web substrate
// and writes all data files plus a shape-check report comparing the
// measured curves against the paper's qualitative claims.
//
// All artifacts are computed through the concurrent experiment
// registry: synthetic webs, indexes, catalogs and demand simulations
// fan out across -workers goroutines, and the output is identical for
// every worker count.
//
// Usage:
//
//	webrepro -scale default -seed 1 -workers 0 -out out/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/logs"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webrepro:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.String("scale", "default", "experiment scale: small, default, large")
	seed := flag.Uint64("seed", 1, "master seed")
	outDir := flag.String("out", "out", "output directory")
	extraction := flag.Bool("extraction", false, "use the full render+parse+extract pipeline")
	workers := flag.Int("workers", 0, "worker pool size for artifact builds and analyses (0: GOMAXPROCS)")
	flag.Parse()

	var sc synth.Scale
	switch *scale {
	case "small":
		sc = synth.ScaleSmall
	case "default":
		sc = synth.ScaleDefault
	case "large":
		sc = synth.ScaleLarge
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	study := core.NewStudy(core.Config{
		Seed:           *seed,
		Entities:       sc.Entities,
		DirectoryHosts: sc.DirectoryHosts,
		CatalogN:       sc.Entities,
		UseExtraction:  *extraction,
		Workers:        *workers,
	})

	start := time.Now()
	if err := report.RunAll(study, *outDir, os.Stdout, *workers); err != nil {
		return err
	}
	fmt.Printf("\nall experiments done in %v; data under %s/\n", time.Since(start).Round(time.Millisecond), *outDir)

	// Shape-check report: the paper's qualitative claims vs measured.
	path := filepath.Join(*outDir, "shape_checks.txt")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := shapeChecks(study, io.MultiWriter(os.Stdout, f)); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("shape checks written to %s\n", path)
	return nil
}

// shapeChecks evaluates the paper's headline quantitative claims
// against the reproduction and prints pass/observe lines.
func shapeChecks(s *core.Study, w io.Writer) error {
	fmt.Fprintln(w, "\n== Shape checks: paper claim vs measured ==")
	check := func(claim string, measured string, ok bool) {
		status := "OK  "
		if !ok {
			status = "DIFF"
		}
		fmt.Fprintf(w, "[%s] %-72s | measured: %s\n", status, claim, measured)
	}

	// §3.4: phones — top-10 ≈ 93%, top-100 ≈ 100% (restaurants).
	phone, err := s.Spread(entity.Restaurants, entity.AttrPhone)
	if err != nil {
		return err
	}
	at := func(c []float64, tPts []int, t int) float64 {
		for i, tv := range tPts {
			if tv == t {
				return c[i]
			}
		}
		return -1
	}
	k1 := phone.Curves[0]
	k5 := phone.Curves[4]
	v10 := at(k1.Coverage, k1.T, 10)
	v100 := at(k1.Coverage, k1.T, 100)
	check("Fig1a: top-10 sites cover ~93% of restaurant phones (k=1)",
		fmt.Sprintf("%.1f%%", 100*v10), v10 > 0.8)
	check("Fig1a: top-100 sites cover ~100% of restaurant phones (k=1)",
		fmt.Sprintf("%.1f%%", 100*v100), v100 > 0.95)
	t90k5 := k5.FirstTReaching(0.9)
	check("Fig1a: k=5 needs ~5000 sites for 90% phone coverage",
		fmt.Sprintf("t=%d", t90k5), t90k5 >= 1000)

	// §3.4: homepages are far more spread; ~10,000 sites for 95% (k=1).
	home, err := s.Spread(entity.Restaurants, entity.AttrHomepage)
	if err != nil {
		return err
	}
	t95 := home.Curves[0].FirstTReaching(0.95)
	check("Fig2a: >= ~10,000 sites for 95% of restaurant homepages (k=1)",
		fmt.Sprintf("t=%d", t95), t95 >= 3000)

	// §3.4: reviews — >1000 sites for 90% 1-coverage.
	rev, err := s.Fig4a()
	if err != nil {
		return err
	}
	t90rev := rev.Curves[0].FirstTReaching(0.9)
	check("Fig4a: > 1000 sites for 90% review 1-coverage",
		fmt.Sprintf("t=%d", t90rev), t90rev > 1000)

	// §3.4: top-1000 sites cover most reviewed entities but a smaller
	// share of total review pages.
	agg, err := s.Fig4b()
	if err != nil {
		return err
	}
	e1000 := at(rev.Curves[0].Coverage, rev.Curves[0].T, 1000)
	p1000 := at(agg.Coverage, agg.T, 1000)
	check("Fig4: page coverage lags entity coverage at top-1000",
		fmt.Sprintf("entities %.1f%% vs pages %.1f%%", 100*e1000, 100*p1000), p1000 < e1000)

	// §3.4.1: greedy set cover improves only marginally.
	f5, err := s.Fig5()
	if err != nil {
		return err
	}
	maxGap := 0.0
	for i := range f5.BySize.Coverage {
		if gap := f5.Greedy.Coverage[i] - f5.BySize.Coverage[i]; gap > maxGap {
			maxGap = gap
		}
	}
	check("Fig5: greedy set cover improvement is insignificant",
		fmt.Sprintf("max gap %.1f points", 100*maxGap), maxGap < 0.15)

	// §4.2: demand concentration IMDb > Amazon > Yelp.
	f6, err := s.Fig6()
	if err != nil {
		return err
	}
	top20 := map[logs.Site]float64{}
	for _, r := range f6 {
		if r.Source == logs.Search {
			top20[r.Site] = r.Top20
		}
	}
	check("Fig6a: top-20% share ordering IMDb > Amazon > Yelp (search)",
		fmt.Sprintf("imdb %.0f%%, amazon %.0f%%, yelp %.0f%%",
			100*top20[logs.IMDb], 100*top20[logs.Amazon], 100*top20[logs.Yelp]),
		top20[logs.IMDb] > top20[logs.Amazon] && top20[logs.Amazon] > top20[logs.Yelp])
	check("Fig6a: IMDb top-20% of titles carry ~90% of demand",
		fmt.Sprintf("%.0f%%", 100*top20[logs.IMDb]), top20[logs.IMDb] > 0.8)
	check("Fig6a: Yelp top-20% of businesses carry ~60% of demand",
		fmt.Sprintf("%.0f%%", 100*top20[logs.Yelp]), top20[logs.Yelp] < 0.8)

	// §4.3.2: Yelp/Amazon relative VA decreases; IMDb humps.
	f8, err := s.Fig8()
	if err != nil {
		return err
	}
	for _, r := range f8 {
		if r.Source != logs.Search {
			continue
		}
		last := r.Bins[len(r.Bins)-1].RelVA
		switch r.Site {
		case logs.Yelp, logs.Amazon:
			check(fmt.Sprintf("Fig8: %s VA(n)/VA(0) decreases toward the head", r.Site),
				fmt.Sprintf("head RelVA %.2f", last), last < 1)
		case logs.IMDb:
			peak, peakIdx := 0.0, -1
			for i, p := range r.Bins {
				if p.RelVA > peak {
					peak, peakIdx = p.RelVA, i
				}
			}
			check("Fig8: IMDb VA rises at mid popularity then falls for the head",
				fmt.Sprintf("peak %.2f at bin %d of %d, head %.2f", peak, peakIdx, len(r.Bins)-1, last),
				peakIdx > 0 && peakIdx < len(r.Bins)-1 && peak > 1)
		}
	}

	// §5: graphs highly connected, diameters small, robust to top-k
	// removal.
	rows, err := s.Table2()
	if err != nil {
		return err
	}
	minLargest, maxDiam := 1.0, 0
	for _, r := range rows {
		if r.Attr == entity.AttrPhone || r.Attr == entity.AttrISBN {
			if r.FracLargest < minLargest {
				minLargest = r.FracLargest
			}
			if r.Diameter > maxDiam {
				maxDiam = r.Diameter
			}
		}
	}
	check("Table2: largest component covers ~99%+ of entities (phone/ISBN)",
		fmt.Sprintf("min %.2f%%", 100*minLargest), minLargest > 0.97)
	check("Table2: diameters small (paper 6-8; d/2 <= 4)",
		fmt.Sprintf("max diameter %d", maxDiam), maxDiam <= 12)

	f9, err := s.Fig9()
	if err != nil {
		return err
	}
	minAfter := 1.0
	for _, r := range f9 {
		if r.Attr == entity.AttrHomepage {
			continue
		}
		if v := r.Curve[len(r.Curve)-1]; v < minAfter {
			minAfter = v
		}
	}
	check("Fig9: > 99% in largest component after removing top-10 (phone/ISBN)",
		fmt.Sprintf("min %.2f%%", 100*minAfter), minAfter > 0.95)
	return nil
}
