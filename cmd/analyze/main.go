// Command analyze runs one, several, or all of the paper's experiments
// through the concurrent experiment registry and emits their data files
// and a terminal preview — or, with -json, the same JSON wire document
// the HTTP serving layer (cmd/serve) returns, so batch and online
// consumers share one encoding.
//
// Usage:
//
//	analyze -exp fig1 -scale small -seed 1 -out out/
//	analyze -exp fig6,fig7,fig8 -workers 8 -out out/
//	analyze -exp all -scale default -out out/
//	analyze -exp fig3,table2 -json > results.json
//
// Run with -h to list the experiment IDs (sourced from the registry
// metadata, core.ExperimentInfos). Artifact builds and analyses fan out
// across -workers goroutines; the output is identical for every worker
// count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment ids, comma-separated ("+strings.Join(core.ExperimentIDs(), ", ")+", or all)")
	scale := flag.String("scale", "small", "experiment scale: small, default, large")
	seed := flag.Uint64("seed", 1, "master seed")
	outDir := flag.String("out", "out", "output directory (empty: terminal only)")
	jsonOut := flag.Bool("json", false, "emit the shared JSON wire document (schema "+report.SchemaV1+") to stdout instead of rendering files/previews")
	extraction := flag.Bool("extraction", false, "build indexes via the full render+parse+extract pipeline instead of direct model decisions")
	workers := flag.Int("workers", 0, "worker pool size for artifact builds, analyses, extraction and demand shards (0: GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON of pipeline/build/experiment spans to this file (load in chrome://tracing or Perfetto)")
	flag.Usage = usage
	flag.Parse()

	if *trace != "" {
		obs.EnableTracing(0)
		defer func() {
			if err := obs.WriteTraceFile(*trace); err != nil {
				fmt.Fprintln(os.Stderr, "analyze: write trace:", err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "analyze: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "analyze: write mem profile:", err)
			}
		}()
	}

	var sc synth.Scale
	switch *scale {
	case "small":
		sc = synth.ScaleSmall
	case "default":
		sc = synth.ScaleDefault
	case "large":
		sc = synth.ScaleLarge
	default:
		return fmt.Errorf("unknown scale %q (small, default, large)", *scale)
	}
	study := core.NewStudy(core.Config{
		Seed:           *seed,
		Entities:       sc.Entities,
		DirectoryHosts: sc.DirectoryHosts,
		CatalogN:       sc.Entities,
		UseExtraction:  *extraction,
		Workers:        *workers,
	})
	ids := core.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
		}
	}
	if *jsonOut {
		rep, err := study.RunExperiments(context.Background(), ids, *workers)
		if err != nil {
			return err
		}
		return report.WriteJSON(os.Stdout, study, rep)
	}
	return report.RunMany(study, ids, *outDir, os.Stdout, *workers)
}

// usage lists flags plus the experiment registry's metadata, so the
// help text always matches what the registry can run.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, "Usage of %s:\n", os.Args[0])
	flag.PrintDefaults()
	fmt.Fprintf(w, "\nExperiments (from the registry):\n")
	for _, info := range core.ExperimentInfos() {
		fmt.Fprintf(w, "  %-8s %s (needs %d artifacts)\n", info.ID, info.Title, len(info.Needs))
	}
}
