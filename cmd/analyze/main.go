// Command analyze runs one, several, or all of the paper's experiments
// through the concurrent experiment registry and emits their data files
// and a terminal preview.
//
// Usage:
//
//	analyze -exp fig1 -scale small -seed 1 -out out/
//	analyze -exp fig6,fig7,fig8 -workers 8 -out out/
//	analyze -exp all -scale default -out out/
//
// Experiment IDs: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// table2 fig9; "all" (or a comma-separated subset) selects several.
// Artifact builds and analyses fan out across -workers goroutines; the
// output is identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment ids, comma-separated ("+strings.Join(report.Experiments, ", ")+", or all)")
	scale := flag.String("scale", "small", "experiment scale: small, default, large")
	seed := flag.Uint64("seed", 1, "master seed")
	outDir := flag.String("out", "out", "output directory (empty: terminal only)")
	extraction := flag.Bool("extraction", false, "build indexes via the full render+parse+extract pipeline instead of direct model decisions")
	workers := flag.Int("workers", 0, "worker pool size for artifact builds, analyses, extraction and demand shards (0: GOMAXPROCS)")
	flag.Parse()

	var sc synth.Scale
	switch *scale {
	case "small":
		sc = synth.ScaleSmall
	case "default":
		sc = synth.ScaleDefault
	case "large":
		sc = synth.ScaleLarge
	default:
		return fmt.Errorf("unknown scale %q (small, default, large)", *scale)
	}
	study := core.NewStudy(core.Config{
		Seed:           *seed,
		Entities:       sc.Entities,
		DirectoryHosts: sc.DirectoryHosts,
		CatalogN:       sc.Entities,
		UseExtraction:  *extraction,
		Workers:        *workers,
	})
	if *exp == "all" {
		return report.RunAll(study, *outDir, os.Stdout, *workers)
	}
	ids := strings.Split(*exp, ",")
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}
	return report.RunMany(study, ids, *outDir, os.Stdout, *workers)
}
