// Command extract runs the §3 extraction pipeline over a WARC crawl:
// parse every page, find identifying attributes (phones, ISBNs,
// homepage links, review content), match them against the entity
// database, and aggregate mentions by host into per-attribute
// entity–host index files.
//
// Usage:
//
//	extract -warc crawl.warc -domain restaurants -entities 2000 -seed 1 -out idx/
//
// The (domain, entities, seed) triple must match the cmd/genweb
// invocation that produced the crawl; the entity database is
// regenerated deterministically from it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/extract"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
}

func run() error {
	warcPath := flag.String("warc", "crawl.warc", "input WARC path")
	domain := flag.String("domain", "restaurants", "entity domain of the crawl")
	entities := flag.Int("entities", synth.ScaleSmall.Entities, "entity database size (must match genweb)")
	hosts := flag.Int("hosts", synth.ScaleSmall.DirectoryHosts, "directory host count (must match genweb)")
	seed := flag.Uint64("seed", 1, "generation seed (must match genweb)")
	outDir := flag.String("out", "idx", "output directory for index files")
	flag.Parse()

	d, err := entity.ParseDomain(*domain)
	if err != nil {
		return err
	}
	// Rebuild the entity DB (and, for restaurants, the labeled training
	// pages for the review classifier) from the generation seed.
	web, err := synth.Generate(synth.Config{
		Domain:         d,
		Entities:       *entities,
		DirectoryHosts: *hosts,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	var nb *classify.NaiveBayes
	if d == entity.Restaurants {
		tr := extract.NewTrainer(1)
		web.TrainingCorpus(400, *seed^0xc1a551f7, tr.Add)
		nb, err = tr.Classifier()
		if err != nil {
			return err
		}
	}

	f, err := os.Open(*warcPath)
	if err != nil {
		return fmt.Errorf("open %s: %w", *warcPath, err)
	}
	defer f.Close()
	idxs, pages, err := core.ExtractWARC(f, web.DB, nb)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", *outDir, err)
	}
	for attr, idx := range idxs {
		path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.idx", d, attr))
		out, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if _, err := idx.WriteTo(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		fmt.Printf("%s: %d sites, %d postings, %d attribute pages\n",
			path, idx.NumSites(), idx.TotalPostings(), idx.TotalPages())
	}
	fmt.Printf("processed %d pages from %s\n", pages, *warcPath)
	return nil
}
