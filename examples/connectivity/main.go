// connectivity reproduces the §5 analysis and demonstrates why it
// matters: it builds the entity–website bipartite graph, reports the
// Table 2 metrics (components, largest-component share, exact
// diameter), tests robustness to removing the top sites (Fig 9), and
// then actually runs the bootstrapping set-expansion crawl the paper
// reasons about — starting from a handful of seed entities and
// alternating "find sites covering known entities" / "adopt all
// entities on those sites" — verifying it saturates within d/2
// iterations.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/entity"
)

func main() {
	study := core.NewStudy(core.Config{
		Seed:           11,
		Entities:       3000,
		DirectoryHosts: 4500,
	})
	idx, err := study.Index(entity.Hotels, entity.AttrPhone)
	if err != nil {
		log.Fatal(err)
	}
	g, err := study.Graph(entity.Hotels, entity.AttrPhone)
	if err != nil {
		log.Fatal(err)
	}
	m := g.ComputeMetrics()
	fmt.Println("Hotels / phone entity-site graph (Table 2 row):")
	fmt.Printf("  avg sites per entity: %.1f\n", m.AvgSitesPerEntity)
	fmt.Printf("  connected components: %d\n", m.Components)
	fmt.Printf("  entities in largest:  %.2f%%\n", 100*m.FracLargest)
	fmt.Printf("  exact diameter:       %d  (=> any seed reaches everything in <= %d rounds)\n",
		m.Diameter, (m.Diameter+1)/2)

	fmt.Println("\nRobustness (Fig 9): largest-component share after removing top-k sites")
	for k, frac := range g.RobustnessCurve(10) {
		fmt.Printf("  k=%2d  %.2f%%\n", k, 100*frac)
	}

	// Bootstrapping set expansion (§2, §5.2): the family of algorithms
	// (Flint, KnowItAll, ...) whose upper bound the graph analysis gives.
	seeds := []int{0, 1500, 2999} // one head, one mid, one tail entity
	known := map[int]bool{}
	for _, s := range seeds {
		known[s] = true
	}
	knownSites := map[string]bool{}
	fmt.Printf("\nBootstrapping crawl from %d seed entities:\n", len(seeds))
	for round := 1; ; round++ {
		// Discover all sites covering any known entity (via a search
		// engine in the paper; via the index here).
		newSites := 0
		for _, site := range idx.Sites {
			if knownSites[site.Host] {
				continue
			}
			for _, e := range site.Entities {
				if known[e] {
					knownSites[site.Host] = true
					newSites++
					break
				}
			}
		}
		// Adopt every entity on the discovered sites.
		newEntities := 0
		for _, site := range idx.Sites {
			if !knownSites[site.Host] {
				continue
			}
			for _, e := range site.Entities {
				if !known[e] {
					known[e] = true
					newEntities++
				}
			}
		}
		fmt.Printf("  round %d: +%4d sites, +%5d entities (total %d entities, %d sites)\n",
			round, newSites, newEntities, len(known), len(knownSites))
		if newSites == 0 && newEntities == 0 {
			break
		}
	}
	covered := idx.DistinctEntities()
	fmt.Printf("\nReached %d of %d extractable entities (%.2f%%)\n",
		len(known), covered, 100*float64(len(known))/float64(covered))
	fmt.Println("— matching the largest-component share: connectivity is what makes")
	fmt.Println("  set-expansion-based web-scale extraction feasible.")
}
