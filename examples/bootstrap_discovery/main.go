// bootstrap_discovery runs the set-expansion algorithm family (§2, §5)
// that the paper's connectivity analysis upper-bounds: seed-set
// sensitivity, the d/2 iteration bound, and the effect of a bounded
// search-engine budget per round.
package main

import (
	"fmt"
	"log"

	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/entity"
)

func main() {
	study := core.NewStudy(core.Config{
		Seed:           5,
		Entities:       3000,
		DirectoryHosts: 4500,
	})
	idx, err := study.Index(entity.Retail, entity.AttrPhone)
	if err != nil {
		log.Fatal(err)
	}
	g, err := study.Graph(entity.Retail, entity.AttrPhone)
	if err != nil {
		log.Fatal(err)
	}
	comps := g.AllComponents()
	diam := g.DiameterLargest(comps)
	fmt.Printf("retail/phone graph: %d components, %.2f%% in largest, diameter %d\n",
		comps.Count, 100*comps.FracEntitiesInLargest(), diam)
	fmt.Printf("=> theory: any giant-component seed saturates within ceil(d/2) = %d rounds\n\n", (diam+1)/2)

	x, err := bootstrap.NewExpander(idx)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Single-seed expansion with unlimited discovery.
	res, err := x.Expand([]int{1234}, bootstrap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unbounded expansion from entity #1234:")
	for i, r := range res.Rounds {
		fmt.Printf("  round %d: +%5d sites  +%5d entities\n", i+1, r.NewSites, r.NewEntities)
	}
	fmt.Printf("  reached %d entities over %d sites in %d productive rounds\n\n",
		res.ReachedEntities(), res.ReachedSites(), res.Iterations())

	// 2. Budgeted expansion: at most 50 new sites per round (a bounded
	// search-engine query budget). Same fixpoint, more rounds.
	budgeted, err := x.Expand([]int{1234}, bootstrap.Options{SiteBudget: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a 50-site/round budget: same reach (%d entities) in %d rounds\n\n",
		budgeted.ReachedEntities(), budgeted.Iterations())

	// 3. Seed sensitivity (§5.3): random seed sets almost surely land in
	// the giant component.
	trials, err := x.SeedSensitivity(dist.NewRNG(99), 3, 25)
	if err != nil {
		log.Fatal(err)
	}
	full := 0
	maxIter := 0
	for _, tr := range trials {
		if tr.ReachedFrac > 0.9 {
			full++
		}
		if tr.Iterations > maxIter {
			maxIter = tr.Iterations
		}
	}
	fmt.Printf("seed sensitivity (25 trials, 3 random seeds each):\n")
	fmt.Printf("  %d/25 trials reached >90%% of all extractable entities\n", full)
	fmt.Printf("  max iterations observed: %d (bound: %d)\n", maxIter, (diam+1)/2)
	fmt.Println("\nConnectivity + redundancy make bootstrapped discovery robust to the")
	fmt.Println("seed choice — the paper's §5 conclusion, verified by running the algorithm.")
}
