// tail_value reproduces the §4 workflow: simulate a year of search and
// browse click logs over three review-rich sites, measure per-entity
// demand as unique cookies, and compute the value-add of one new review
// for head vs tail entities (Figures 6–8).
package main

import (
	"fmt"
	"log"

	"repro/internal/demand"
	"repro/internal/logs"
	"repro/internal/valueadd"
)

func main() {
	for _, site := range logs.Sites {
		cat, err := demand.GenerateCatalog(demand.SiteDefaults(site, 5000, 2026))
		if err != nil {
			log.Fatal(err)
		}
		// Simulate raw click logs and aggregate unique cookies, exactly
		// as the §4.1 methodology prescribes. The demand pipeline runs
		// generation, routing and aggregation fully concurrently —
		// generator workers synthesize leapfrog RNG substreams and fan
		// 16-byte entity-indexed ClickRefs into per-entity shard workers,
		// never formatting or parsing a URL — and the result is identical
		// to a serial fold for any worker count.
		agg, err := demand.GeneratePipeline(cat, demand.SimConfig{
			Events:  120000,
			Cookies: 25000,
			Seed:    uint64(len(site)),
		}, demand.PipelineConfig{})
		if err != nil {
			log.Fatal(err)
		}
		vec := demand.UniqueVector(agg.Demand(logs.Search))

		// Demand concentration (Fig 6): share of the top 20% of
		// inventory.
		fmt.Printf("== %s ==\n", site)
		fmt.Printf("  %d shards aggregated; top-20%% of inventory carries %.0f%% of search demand\n",
			agg.Shards(), 100*demand.TopShare(vec, 0.2))

		// Value-add (Fig 8), conditioned on entities with traffic as the
		// paper's log-sampled inventory implies.
		var reviews []int
		var dem []float64
		for i, e := range cat.Entities {
			if vec[i] > 0 {
				reviews = append(reviews, e.Reviews)
				dem = append(dem, vec[i])
			}
		}
		bins, err := valueadd.Analyze(reviews, dem, valueadd.InverseLinear{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %9s %14s %12s\n", "reviews", "entities", "avg demand", "VA(n)/VA(0)")
		for _, b := range bins {
			fmt.Printf("  %-8s %9d %14.1f %12.2f\n", b.Label, b.Entities, b.MeanDemand, b.RelVA)
		}
		fmt.Println()
	}
	fmt.Println("Yelp and Amazon: relative value-add falls with n — a new review")
	fmt.Println("for a tail entity is worth more even after adjusting for demand.")
	fmt.Println("IMDb: value-add peaks at mid popularity (tail interest decays fast).")
}
