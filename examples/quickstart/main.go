// Quickstart: run one named experiment from the registry over a small
// synthetic web and print its k-coverage curve — the minimal end-to-end
// use of the library (§3 of the paper in ~40 lines).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	// A Study wires together the synthetic web, extraction and analysis
	// layers; everything is deterministic in the seed. Each paper
	// artifact is a named experiment in the registry, and the engine
	// fans its builds across all cores.
	study := core.NewStudy(core.Config{
		Seed:           42,
		Entities:       2000,
		DirectoryHosts: 3000,
	})

	rep, err := study.RunExperiments(context.Background(), []string{"fig1"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Results[0]
	fmt.Printf("%s (computed in %v)\n\n", res.Title, res.Elapsed.Round(time.Millisecond))

	panels := res.Value.([]*core.SpreadResult)
	r := panels[0] // panel (a): restaurants
	fmt.Printf("Restaurant phones across %d websites:\n\n", r.Sites)
	fmt.Printf("%8s  %12s  %12s\n", "top-t", "1-coverage", "5-coverage")
	k1, k5 := r.Curves[0], r.Curves[4]
	for i, t := range k1.T {
		switch t {
		case 1, 10, 100, 1000, r.Sites:
			fmt.Printf("%8d  %11.1f%%  %11.1f%%\n", t, 100*k1.Coverage[i], 100*k5.Coverage[i])
		}
	}
	fmt.Printf("\nSites needed for 90%% 1-coverage: %d\n", k1.FirstTReaching(0.9))
	fmt.Printf("Sites needed for 90%% 5-coverage: %d\n", k5.FirstTReaching(0.9))

	fmt.Println("\nSame analysis for every local-business domain (panels b–h):")
	sitesFor := func(p *core.SpreadResult, k int) string {
		if t := p.Curves[k].FirstTReaching(0.9); t >= 0 {
			return fmt.Sprintf("t=%d", t)
		}
		return "never"
	}
	for _, p := range panels[1:] {
		fmt.Printf("  %-18s 90%% 1-coverage at %-7s 90%% 5-coverage at %s\n",
			p.Domain.Title(), sitesFor(p, 0), sitesFor(p, 4))
	}
	fmt.Println("\nEven with strong head aggregators, corroborated extraction")
	fmt.Println("(k=5) needs orders of magnitude more sites — the paper's point.")
}
