// Quickstart: generate a small synthetic web for one domain, build the
// entity–host index, and print the k-coverage curve — the minimal
// end-to-end use of the library (§3 of the paper in ~40 lines).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/entity"
)

func main() {
	// A Study wires together the synthetic web, extraction and analysis
	// layers; everything is deterministic in the seed.
	study := core.NewStudy(core.Config{
		Seed:           42,
		Entities:       2000,
		DirectoryHosts: 3000,
	})

	r, err := study.Spread(entity.Restaurants, entity.AttrPhone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Restaurant phones across %d websites:\n\n", r.Sites)
	fmt.Printf("%8s  %12s  %12s\n", "top-t", "1-coverage", "5-coverage")
	k1, k5 := r.Curves[0], r.Curves[4]
	for i, t := range k1.T {
		switch t {
		case 1, 10, 100, 1000, r.Sites:
			fmt.Printf("%8d  %11.1f%%  %11.1f%%\n", t, 100*k1.Coverage[i], 100*k5.Coverage[i])
		}
	}
	fmt.Printf("\nSites needed for 90%% 1-coverage: %d\n", k1.FirstTReaching(0.9))
	fmt.Printf("Sites needed for 90%% 5-coverage: %d\n", k5.FirstTReaching(0.9))
	fmt.Println("\nEven with strong head aggregators, corroborated extraction")
	fmt.Println("(k=5) needs orders of magnitude more sites — the paper's point.")
}
