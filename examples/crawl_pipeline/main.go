// crawl_pipeline runs the full §3 pipeline the way a crawl-based
// deployment would: render the synthetic web into a WARC archive, run
// the extraction stage over the archive (HTML parsing, phone regex,
// homepage anchors, Naïve-Bayes review detection), aggregate mentions
// by host, and compare the resulting coverage analysis against the
// model's ground truth.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/entity"
	"repro/internal/extract"
	"repro/internal/synth"
)

func main() {
	web, err := synth.Generate(synth.Config{
		Domain:         entity.Restaurants,
		Entities:       800,
		DirectoryHosts: 1200,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic web: %d sites, %d listings, %d review pages\n",
		len(web.Sites), web.TotalListings(), web.TotalReviewPages())

	// 1. Crawl → WARC (in memory here; cmd/genweb writes files).
	var archive bytes.Buffer
	cdx, err := core.WriteWARC(web, &archive, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WARC archive: %d pages, %.1f MB gzipped, %d hosts\n",
		len(cdx.Entries), float64(archive.Len())/(1<<20), len(cdx.Hosts()))

	// 2. Train the review classifier on labeled pages (§3.2), streamed
	// page by page through the trainer.
	tr := extract.NewTrainer(1)
	web.TrainingCorpus(300, 99, tr.Add)
	nb, err := tr.Classifier()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("review classifier: %d-token vocabulary\n", nb.Vocabulary())

	// 3. Extract the archive back into entity–host indexes.
	idxs, pagesProcessed, err := core.ExtractWARC(&archive, web.DB, nb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extraction: %d pages processed\n\n", pagesProcessed)

	// 4. Coverage analysis per attribute, checked against ground truth.
	truth := web.DirectIndexes()
	for _, attr := range entity.AttrsFor(entity.Restaurants) {
		idx := idxs[attr]
		curves, err := coverage.KCoverage(idx, 1, coverage.LogSpacedT(len(idx.Sites)))
		if err != nil {
			log.Fatal(err)
		}
		k1 := curves[0]
		fmt.Printf("%-10s %6d sites, %7d postings (truth %7d), 90%% coverage at top-%d\n",
			attr, idx.NumSites(), idx.TotalPostings(),
			truth[attr].TotalPostings(), k1.FirstTReaching(0.9))
	}
}
