// runall demonstrates the concurrent artifact engine end-to-end: one
// Study.RunAll call reproduces every table and figure of the paper,
// fanning synthetic-web generation, index builds, demand simulation and
// graph analyses across a bounded worker pool. The per-artifact timing
// report shows where the wall clock goes, and the build stats show the
// singleflight guarantee: each artifact key is built exactly once no
// matter how many experiments need it.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
)

func main() {
	study := core.NewStudy(core.Config{
		Seed:           1,
		Entities:       2000,
		DirectoryHosts: 3000,
		CatalogN:       4000,
	})

	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("running all %d experiments with %d workers...\n\n",
		len(core.ExperimentIDs()), workers)

	rep, err := study.RunAll(context.Background(), workers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("artifact builds (deduplicated across experiments):")
	for _, a := range rep.Artifacts {
		fmt.Printf("  %-34s %8v\n", a.Name, a.Elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nexperiment analyses:")
	for _, r := range rep.Results {
		fmt.Printf("  %-10s %8v  %s\n", r.ID, r.Elapsed.Round(time.Millisecond), r.Title)
	}

	stats := study.BuildStats()
	fmt.Printf("\nwall clock: %v total\n", rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("builders ran: %d webs, %d index sets, %d catalogs, %d demand sims, %d graphs\n",
		stats.Webs, stats.Indexes, stats.Catalogs, stats.Demands, stats.Graphs)
	fmt.Println("(every key exactly once — the singleflight memo dedupes all overlap)")
}
