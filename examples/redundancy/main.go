// redundancy operationalizes the paper's k-coverage motivation (§3.3):
// extraction is noisy, so one wants an attribute value corroborated by
// k independent sites before trusting it. This example injects §3.5's
// false-match noise into the phone extractions of a synthetic web and
// sweeps the corroboration threshold k, showing the precision/recall
// trade-off that the k-coverage curves of Figures 1–4 bound.
package main

import (
	"fmt"
	"log"

	"repro/internal/corroborate"
	"repro/internal/coverage"
	"repro/internal/entity"
	"repro/internal/synth"
)

func main() {
	web, err := synth.Generate(synth.Config{
		Domain:         entity.Restaurants,
		Entities:       2000,
		DirectoryHosts: 3000,
		Seed:           31,
	})
	if err != nil {
		log.Fatal(err)
	}
	idx := web.DirectIndexes()[entity.AttrPhone]
	truth := func(id int) string { return string(web.DB.Entities[id].Phone) }

	for _, noise := range []float64{0.05, 0.25} {
		obs, err := corroborate.Simulate(idx, truth, corroborate.Config{
			Noise: noise,
			Mode:  corroborate.Confusion, // §3.5's false-match mode
			Seed:  7,
		})
		if err != nil {
			log.Fatal(err)
		}
		ms, err := obs.Evaluate(10, web.DB.N())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("extraction noise %.0f%% (false phone matches):\n", 100*noise)
		fmt.Printf("  %2s  %10s  %8s\n", "k", "precision", "recall")
		for _, m := range ms {
			fmt.Printf("  %2d  %9.2f%%  %7.2f%%\n", m.K, 100*m.Precision, 100*m.Recall)
		}
		fmt.Println()
	}

	// Tie back to the coverage analysis: recall at threshold k over the
	// FULL site population is exactly the k-coverage asymptote.
	curves, err := coverage.KCoverage(idx, 5, coverage.LogSpacedT(len(idx.Sites)))
	if err != nil {
		log.Fatal(err)
	}
	k5 := curves[4]
	fmt.Printf("k-coverage bound: %.1f%% of entities appear on >= 5 sites,\n",
		100*k5.Coverage[len(k5.Coverage)-1])
	fmt.Println("so no resolver demanding 5 agreeing sources can ever exceed that")
	fmt.Println("recall — and reaching it requires extracting from the deep tail,")
	fmt.Println("which is the paper's argument for web-scale extraction.")
}
