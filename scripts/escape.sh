#!/usr/bin/env bash
# escape.sh — pin the escape-analysis surface of the zero-allocation
# hot paths (internal/demand, internal/seg) to a committed baseline.
#
# The noalloc analyzer (internal/lint) proves annotated functions avoid
# allocation-forcing *constructs*; the compiler's escape analysis is
# the other half of the contract — a value that starts stack-allocated
# can silently move to the heap when an innocent-looking refactor grows
# an interface edge or a captured pointer. This script renders
# `go build -gcflags=-m=1` diagnostics for the two hot-path packages
# into a stable form and diffs them against scripts/escape_baseline.txt,
# so every newly escaping value shows up in review instead of in a
# profile.
#
# Normalization: only "escapes to heap" / "moved to heap" lines are
# kept, line:col positions are stripped (unrelated edits shift them),
# and identical file+message lines are collapsed with a count. A new
# escape changes a count or adds a line; shuffling code around does not.
#
# Usage:
#   scripts/escape.sh           # check against the committed baseline
#   scripts/escape.sh -u        # rewrite the baseline (review the diff!)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/escape_baseline.txt
PKGS=(./internal/demand/ ./internal/seg/)

current() {
    # -m=1 diagnostics are cached with the build, so repeat runs replay
    # them without recompiling. || true: grep finds nothing only if the
    # packages stop allocating entirely.
    go build -gcflags='-m=1' "${PKGS[@]}" 2>&1 |
        grep -E '(escapes to heap|moved to heap)' |
        sed -E 's/:[0-9]+:[0-9]+:/:/' |
        sort | uniq -c | sed -E 's/^ +//' || true
}

if [[ "${1:-}" == "-u" ]]; then
    current > "$BASELINE"
    echo "escape.sh: baseline rewritten ($(wc -l < "$BASELINE") distinct escape sites)"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "escape.sh: missing $BASELINE — run scripts/escape.sh -u to create it" >&2
    exit 1
fi

if diff=$(diff -u "$BASELINE" <(current)); then
    echo "escape.sh: OK ($(wc -l < "$BASELINE") distinct escape sites, unchanged)"
else
    echo "escape.sh: escape-analysis surface changed in internal/demand or internal/seg:" >&2
    echo "$diff" >&2
    echo >&2
    echo "If every new escape is intentional (cold path, one-time setup)," >&2
    echo "rerun with scripts/escape.sh -u and commit the baseline." >&2
    exit 1
fi
