#!/usr/bin/env bash
# bench.sh — run the tier-1 benchmarks with -benchmem and emit a
# machine-readable snapshot (BENCH_<PR>.json) of the performance
# trajectory: extraction (streaming vs retained-DOM baseline), demand
# generation (serial wire fold, serial ref fold, sharded, pipeline),
# and the serving layer. cmd/benchdiff compares two snapshots and
# gates CI on >20% ns/op regressions.
#
# Usage:
#   scripts/bench.sh                 # BENCHTIME=2x, writes BENCH_5.json
#   BENCHTIME=5s OUT=/tmp/b.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
PR="${PR:-5}"
OUT="${OUT:-BENCH_${PR}.json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkExtractIndexes|BenchmarkEndToEndPipeline|BenchmarkGenerate$' \
  -benchmem -benchtime "$BENCHTIME" . | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkServe' -benchmem -benchtime "$BENCHTIME" \
  ./internal/serve/ | tee -a "$raw"

awk -v benchtime="$BENCHTIME" -v goversion="$(go version | awk '{print $3}')" '
BEGIN {
  printf "{\n  \"schema\": \"bench/v1\",\n"
  printf "  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"results\": [", goversion, benchtime
  n = 0
}
/^Benchmark/ {
  name = $1
  # go test suffixes names with -GOMAXPROCS on multi-core hosts
  # (none when GOMAXPROCS=1); strip it so BENCH files recorded on
  # different hosts pair up in cmd/benchdiff.
  sub(/-[0-9]+$/, "", name)
  ns = ""; bytes = ""; allocs = ""; mbs = ""
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
    if ($(i+1) == "MB/s")      mbs = $i
  }
  if (ns == "") next
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
  if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  if (mbs != "")    printf ", \"mb_per_s\": %s", mbs
  printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$OUT"

echo "wrote $OUT"
