#!/usr/bin/env bash
# bench.sh — run the tier-1 benchmarks with -benchmem and emit a
# machine-readable snapshot (BENCH_<PR>.json) of the performance
# trajectory: extraction (streaming vs retained-DOM baseline), demand
# generation (serial wire fold, serial ref fold — columnar batch and
# scalar ablation — sharded, pipeline), the columnar segment store
# (write / replay / pushdown-filtered replay), and the serving layer.
# cmd/benchdiff compares two snapshots and gates CI on >20% ns/op
# regressions; the demand rows also carry the aggregator's modelled
# bytes/click (testing.B.ReportMetric in BenchmarkGenerate), recorded
# as bytes_per_click so layout changes show their bandwidth effect
# next to their time effect.
#
# Measurement protocol: the demand-generation rows are the gated,
# drift-prone ones, so they run -count $GENCOUNT (default 5) at
# $GENBENCHTIME (default 6x) and the snapshot keeps, per row, the
# sample with the MEDIAN ns/op (the whole sample: its B/op, allocs/op,
# and bytes/click come from the same run, so each row is internally
# consistent). Medians, not minimums or means: the bench hosts drift
# by tens of percent between runs, a median-of-5 is stable against one
# slow outlier, and every BENCH_<PR>.json since BENCH_5 was recorded
# under this protocol. Even sample counts take the lower middle.
# Everything else runs once at $BENCHTIME.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_<newest+1>.json
#   BENCHTIME=5s OUT=/tmp/b.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
GENBENCHTIME="${GENBENCHTIME:-6x}"
GENCOUNT="${GENCOUNT:-5}"
# Default PR number: one past the newest committed BENCH_<n>.json, so
# the script never silently overwrites the previous PR's snapshot when
# nobody remembers to bump a hardcoded default.
if [ -z "${PR:-}" ]; then
  files="$(git ls-files 'BENCH_*.json' 2>/dev/null || true)"
  [ -n "$files" ] || files="$(ls BENCH_*.json 2>/dev/null || true)"
  latest="$(printf '%s\n' "$files" | sed -n 's/^BENCH_\([0-9]\+\)\.json$/\1/p' | sort -n | tail -1)"
  PR=$(( ${latest:-0} + 1 ))
fi
OUT="${OUT:-BENCH_${PR}.json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkExtractIndexes|BenchmarkEndToEndPipeline' \
  -benchmem -benchtime "$BENCHTIME" . | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkGenerate$|BenchmarkSegment' \
  -benchmem -benchtime "$GENBENCHTIME" -count "$GENCOUNT" . | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkServe' -benchmem -benchtime "$BENCHTIME" \
  ./internal/serve/ | tee -a "$raw"

awk -v benchtime="$BENCHTIME (demand rows: $GENBENCHTIME, median of $GENCOUNT runs)" \
    -v goversion="$(go version | awk '{print $3}')" '
/^Benchmark/ {
  name = $1
  # go test suffixes names with -GOMAXPROCS on multi-core hosts
  # (none when GOMAXPROCS=1); strip it so BENCH files recorded on
  # different hosts pair up in cmd/benchdiff.
  sub(/-[0-9]+$/, "", name)
  ns = ""; row = ""
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op")       ns = $i
    if ($(i+1) == "B/op")        row = row sprintf(", \"bytes_per_op\": %s", $i)
    if ($(i+1) == "allocs/op")   row = row sprintf(", \"allocs_per_op\": %s", $i)
    if ($(i+1) == "MB/s")        row = row sprintf(", \"mb_per_s\": %s", $i)
    if ($(i+1) == "bytes/click") row = row sprintf(", \"bytes_per_click\": %s", $i)
    if ($(i+1) == "skippedsegs/op") row = row sprintf(", \"skipped_segs_per_op\": %s", $i)
  }
  if (ns == "") next
  if (!(name in count)) order[++names] = name
  count[name]++
  sample_ns[name, count[name]] = ns + 0
  sample_row[name, count[name]] = sprintf("{\"name\": \"%s\", \"ns_per_op\": %s%s}", name, ns, row)
}
END {
  printf "{\n  \"schema\": \"bench/v1\",\n"
  printf "  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"results\": [", goversion, benchtime
  for (j = 1; j <= names; j++) {
    name = order[j]
    n = count[name]
    # Rank the samples by ns/op (insertion sort; n is tiny) and keep
    # the median sample whole.
    for (i = 1; i <= n; i++) idx[i] = i
    for (i = 2; i <= n; i++) {
      k = idx[i]
      for (m = i - 1; m >= 1 && sample_ns[name, idx[m]] > sample_ns[name, k]; m--) idx[m+1] = idx[m]
      idx[m+1] = k
    }
    med = idx[int((n + 1) / 2)]
    printf "%s\n    %s", (j > 1 ? "," : ""), sample_row[name, med]
  }
  printf "\n  ]\n}\n"
}
' "$raw" > "$OUT"

echo "wrote $OUT"
