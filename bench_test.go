// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper (regenerating the analysis behind it), plus the
// ablation benchmarks DESIGN.md calls out for the design choices made
// in this reproduction. Run with:
//
//	go test -bench=. -benchmem
//
// Setup (synthetic web generation, log simulation) happens outside the
// timed region; the timed body is the analysis that produces the
// artifact.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/corroborate"
	"repro/internal/coverage"
	"repro/internal/demand"
	"repro/internal/entity"
	"repro/internal/extract"
	"repro/internal/graph"
	"repro/internal/htmlx"
	"repro/internal/index"
	"repro/internal/logs"
	"repro/internal/seg"
	"repro/internal/synth"
)

// benchStudy caches one mid-scale study across benchmarks so the
// expensive generation cost is paid once per `go test -bench` run.
var benchStudy = core.NewStudy(core.Config{
	Seed:            1,
	Entities:        6000,
	DirectoryHosts:  9000,
	CatalogN:        8000,
	EventsPerSource: 160000,
})

func benchIndex(b *testing.B, d entity.Domain, a entity.Attr) *index.Index {
	b.Helper()
	idx, err := benchStudy.Index(d, a)
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// BenchmarkTable1Domains regenerates Table 1 (domain/attribute list).
func BenchmarkTable1Domains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchStudy.Table1()
		if len(rows) != 9 {
			b.Fatal("bad table1")
		}
	}
}

// BenchmarkFig1PhoneCoverage regenerates a Figure 1 panel: the
// k-coverage curves of the phone attribute, one sub-benchmark per
// local-business domain.
func BenchmarkFig1PhoneCoverage(b *testing.B) {
	for _, d := range entity.LocalBusinessDomains {
		idx := benchIndex(b, d, entity.AttrPhone)
		tPts := coverage.LogSpacedT(len(idx.Sites))
		b.Run(string(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coverage.KCoverage(idx, core.KCoverageMax, tPts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2HomepageCoverage regenerates a Figure 2 panel
// (homepage-attribute k-coverage) for the restaurants domain.
func BenchmarkFig2HomepageCoverage(b *testing.B) {
	idx := benchIndex(b, entity.Restaurants, entity.AttrHomepage)
	tPts := coverage.LogSpacedT(len(idx.Sites))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coverage.KCoverage(idx, core.KCoverageMax, tPts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3BookISBNCoverage regenerates Figure 3 (book ISBN
// k-coverage).
func BenchmarkFig3BookISBNCoverage(b *testing.B) {
	idx := benchIndex(b, entity.Books, entity.AttrISBN)
	tPts := coverage.LogSpacedT(len(idx.Sites))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coverage.KCoverage(idx, core.KCoverageMax, tPts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4aReviewCoverage regenerates Figure 4(a): restaurant
// review k-coverage.
func BenchmarkFig4aReviewCoverage(b *testing.B) {
	idx := benchIndex(b, entity.Restaurants, entity.AttrReview)
	tPts := coverage.LogSpacedT(len(idx.Sites))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coverage.KCoverage(idx, core.KCoverageMax, tPts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4bAggregateReviews regenerates Figure 4(b): fraction of
// all review pages covered by the top-t sites.
func BenchmarkFig4bAggregateReviews(b *testing.B) {
	idx := benchIndex(b, entity.Restaurants, entity.AttrReview)
	tPts := coverage.LogSpacedT(len(idx.Sites))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coverage.AggregateCoverage(idx, tPts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5GreedySetCover regenerates Figure 5: the greedy
// set-cover ordering of restaurant-homepage sites.
func BenchmarkFig5GreedySetCover(b *testing.B) {
	idx := benchIndex(b, entity.Restaurants, entity.AttrHomepage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coverage.GreedySetCover(idx, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6DemandDistribution regenerates Figure 6: the CDF and
// rank-share PDF of unique-cookie demand, per site.
func BenchmarkFig6DemandDistribution(b *testing.B) {
	for _, site := range logs.Sites {
		ests, err := benchStudy.Demand(site)
		if err != nil {
			b.Fatal(err)
		}
		vec := demand.UniqueVector(ests[logs.Search])
		b.Run(string(site), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := demand.DemandCDF(vec, 100); err != nil {
					b.Fatal(err)
				}
				if _, err := demand.DemandPDF(vec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7DemandVsReviews regenerates Figure 7: per-review-bin
// z-scored demand for all three sites and both sources.
func BenchmarkFig7DemandVsReviews(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchStudy.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ValueAdd regenerates Figure 8: relative value-add
// VA(n)/VA(0) curves.
func BenchmarkFig8ValueAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchStudy.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2GraphMetrics regenerates one Table 2 row: components,
// largest-component share and exact diameter of the entity-site graph.
func BenchmarkTable2GraphMetrics(b *testing.B) {
	for _, pair := range []struct {
		d entity.Domain
		a entity.Attr
	}{
		{entity.Books, entity.AttrISBN},
		{entity.Restaurants, entity.AttrPhone},
		{entity.Restaurants, entity.AttrHomepage},
	} {
		g, err := benchStudy.Graph(pair.d, pair.a)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(pair.d)+"/"+string(pair.a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := g.ComputeMetrics()
				if m.Diameter == 0 {
					b.Fatal("degenerate graph")
				}
			}
		})
	}
}

// BenchmarkFig9Robustness regenerates Figure 9: the largest-component
// share after removing the top-k sites, k = 0..10.
func BenchmarkFig9Robustness(b *testing.B) {
	g, err := benchStudy.Graph(entity.Restaurants, entity.AttrPhone)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := g.RobustnessCurve(core.Fig9MaxK)
		if len(curve) != core.Fig9MaxK+1 {
			b.Fatal("bad curve")
		}
	}
}

// BenchmarkEndToEndPipeline measures the full extraction path on a
// small web: render HTML → tokenize → match → index, via the streaming
// pipeline.
func BenchmarkEndToEndPipeline(b *testing.B) {
	web, err := synth.Generate(synth.Config{
		Domain: entity.Banks, Entities: 300, DirectoryHosts: 450, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := web.ExtractIndexes(nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractIndexes is the cold-build headline of the streaming
// extraction PR: the same web extracted by the fused streaming pipeline
// (ExtractIndexes) versus the retained-DOM pipeline it replaced —
// render []Page, htmlx.Parse per page, joined Text, regex matching —
// replicated here verbatim as the measured baseline. Compare ns/op and
// allocs/op between the two sub-benchmarks; scripts/bench.sh records
// both in BENCH_4.json.
func BenchmarkExtractIndexes(b *testing.B) {
	web, err := synth.Generate(synth.Config{
		Domain: entity.Banks, Entities: 300, DirectoryHosts: 450, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idxs, err := web.ExtractIndexes(nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			if idxs[entity.AttrPhone].TotalPostings() == 0 {
				b.Fatal("empty phone index")
			}
		}
	})
	b.Run("dom", func(b *testing.B) {
		x, err := extract.New(web.DB, nil)
		if err != nil {
			b.Fatal(err)
		}
		workers := runtime.GOMAXPROCS(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			attrs := entity.AttrsFor(web.Config.Domain)
			sharded := make(map[entity.Attr]*index.ShardedBuilder, len(attrs))
			for _, a := range attrs {
				universe := web.Config.Entities
				if a == entity.AttrHomepage {
					universe = len(web.DB.WithHomepage())
				}
				sharded[a] = index.NewShardedBuilder(web.Config.Domain, a, universe, 4*workers)
			}
			siteCh := make(chan *synth.Site, workers)
			var wg sync.WaitGroup
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for s := range siteCh {
						for _, p := range web.RenderSite(s) {
							for _, m := range x.Page(p.HTML) {
								if bd, ok := sharded[m.Attr]; ok {
									bd.Add(s.Host, m.EntityID)
								}
							}
						}
					}
				}()
			}
			for si := range web.Sites {
				siteCh <- &web.Sites[si]
			}
			close(siteCh)
			wg.Wait()
			idx, err := sharded[entity.AttrPhone].Build()
			if err != nil || idx.TotalPostings() == 0 {
				b.Fatal("empty phone index")
			}
		}
	})
}

// BenchmarkRunAll measures the full reproduction — every table and
// figure — through the experiment registry, serial (workers=1) vs
// parallel (workers=GOMAXPROCS). Each iteration builds a fresh Study so
// the artifact engine's fan-out is what is timed; the parallel/serial
// ratio is the headline speedup of the concurrent artifact engine.
func BenchmarkRunAll(b *testing.B) {
	cfg := core.Config{
		Seed:            2,
		Entities:        2000,
		DirectoryHosts:  3000,
		CatalogN:        5000,
		EventsPerSource: 100000,
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewStudy(cfg)
				rep, err := s.RunAll(context.Background(), bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Results) != len(core.ExperimentIDs()) {
					b.Fatal("incomplete run")
				}
			}
		})
	}
}

// BenchmarkGenerate measures the §4 demand workload end to end under
// four architectures:
//
//   - serial: the wire-format fold — Simulate materializes each click
//     to logs.Click and Aggregator.Add resolves the URL back to its
//     entity (interned catalog URLs cost one string-map hit). This is
//     what replaying a click log costs, and the name-stable baseline
//     the bench regression gate tracks across BENCH files.
//   - serial-ref: the zero-string serial fold — since PR 6 the
//     columnar architecture: SimulateRefBatches streams reused ref
//     batches into Aggregator.FoldBatch (struct-of-arrays state,
//     cache-blocked per-block delta folds), no URL ever built or
//     parsed. TestFoldBatchMatchesAddRef pins it bit-identical to the
//     scalar AddRef loop it replaced.
//   - serial-ref-scalar: the same fold one AddRef at a time — the
//     PR 5 architecture, kept as the columnar row's ablation baseline.
//   - serialgen-shardedagg: serial ref generation feeding 4 concurrent
//     shard workers (SimulateParallel; shards fold columnar batches).
//   - pipeline/gen=N: the fully concurrent path (GeneratePipeline).
//
// The PR 6 contract: serial-ref ≤ 15 ms/op and pipeline/gen=4 ≤ 22
// ms/op on the bench host, with a measured drop in bytes moved per
// click. All rows share the same aggregation structures (cookie bitmap
// hint included), so the deltas isolate the layout, not tuning.
//
// Each demand row also reports "bytes/click": the aggregator's
// modelled state traffic (Aggregator.BytesMoved — ref stream + visit
// column touches + cookie-structure bytes, computed from column widths
// and touch counts) divided by clicks folded. BENCH files carry it so
// the trajectory tracks bandwidth, not just ns/op; the wire-serial row
// reports none (its Add path measures replay cost, not layout).
func BenchmarkGenerate(b *testing.B) {
	cat, err := benchStudy.Catalog(logs.Amazon)
	if err != nil {
		b.Fatal(err)
	}
	cfg := demand.SimConfig{Events: 200000, Cookies: 30000, Seed: 7}
	events := func(b *testing.B) { b.SetBytes(int64(2 * cfg.Events)) }
	perClick := func(b *testing.B, moved uint64) {
		b.ReportMetric(float64(moved)/float64(b.N)/float64(2*cfg.Events), "bytes/click")
	}

	b.Run("serial", func(b *testing.B) {
		events(b)
		for i := 0; i < b.N; i++ {
			agg := demand.NewAggregator(cat)
			agg.SetCookieHint(cfg.Cookies)
			if err := demand.Simulate(cat, cfg, func(c logs.Click) error {
				agg.Add(c)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial-ref", func(b *testing.B) {
		events(b)
		var moved uint64
		for i := 0; i < b.N; i++ {
			agg := demand.NewAggregator(cat)
			agg.SetCookieHint(cfg.Cookies)
			if err := demand.SimulateRefBatches(cat, cfg, 0, agg.FoldBatch); err != nil {
				b.Fatal(err)
			}
			moved += agg.BytesMoved()
		}
		perClick(b, moved)
	})
	b.Run("serial-ref-scalar", func(b *testing.B) {
		events(b)
		var moved uint64
		for i := 0; i < b.N; i++ {
			agg := demand.NewAggregator(cat)
			agg.SetCookieHint(cfg.Cookies)
			if err := demand.SimulateRefs(cat, cfg, agg.AddRef); err != nil {
				b.Fatal(err)
			}
			moved += agg.BytesMoved()
		}
		perClick(b, moved)
	})
	b.Run("serialgen-shardedagg", func(b *testing.B) {
		events(b)
		var moved uint64
		for i := 0; i < b.N; i++ {
			sa, err := demand.SimulateParallel(cat, cfg, 4)
			if err != nil {
				b.Fatal(err)
			}
			moved += sa.BytesMoved()
		}
		perClick(b, moved)
	})
	for _, gens := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pipeline/gen=%d", gens), func(b *testing.B) {
			events(b)
			var moved uint64
			for i := 0; i < b.N; i++ {
				sa, err := demand.GeneratePipeline(cat, cfg, demand.PipelineConfig{
					Generators: gens, Shards: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				moved += sa.BytesMoved()
			}
			perClick(b, moved)
		})
	}
}

// BenchmarkSegment measures the persistent click-log boundary under
// the columnar segment store (internal/seg) at BenchmarkGenerate's
// workload scale (400k clicks):
//
//   - write: ordered parallel generation encoded straight into segment
//     blocks — what `clicklog gen -format seg` costs. Reports the
//     encoded "bytes/click" (the on-disk footprint the per-column
//     varint/RLE blocks achieve vs 16 B in RAM and ~60 B as TSV).
//   - replay: decode + FeedRefs into 4 shard workers — what replaying
//     a persisted log into demand aggregates costs. No URL is ever
//     formatted or parsed; the PR 7 contract is replay throughput at
//     or above the pipeline/gen=4 end-to-end rate (which must also
//     synthesize the clicks it folds).
//   - replay-pushdown/src: the same replay filtered to the search
//     stream; source runs are contiguous so zone maps must prune the
//     browse half, reported as "skippedsegs/op".
func BenchmarkSegment(b *testing.B) {
	cat, err := benchStudy.Catalog(logs.Amazon)
	if err != nil {
		b.Fatal(err)
	}
	cfg := demand.SimConfig{Events: 200000, Cookies: 30000, Seed: 7}
	p := demand.PipelineConfig{Generators: 4}
	events := func(b *testing.B) { b.SetBytes(int64(2 * cfg.Events)) }

	var blob bytes.Buffer
	w := seg.NewWriter(&blob, 0)
	if err := demand.GenerateOrderedRefs(cat, cfg, p, w.Add); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("write", func(b *testing.B) {
		events(b)
		buf := bytes.NewBuffer(make([]byte, 0, blob.Len()))
		for i := 0; i < b.N; i++ {
			buf.Reset()
			sw := seg.NewWriter(buf, 0)
			if err := demand.GenerateOrderedRefs(cat, cfg, p, sw.Add); err != nil {
				b.Fatal(err)
			}
			if err := sw.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(blob.Len())/float64(2*cfg.Events), "bytes/click")
	})
	replay := func(b *testing.B, pred seg.Predicate, wantSkips bool) {
		events(b)
		var skipped int
		for i := 0; i < b.N; i++ {
			r, err := seg.NewReader(bytes.NewReader(blob.Bytes()), int64(blob.Len()))
			if err != nil {
				b.Fatal(err)
			}
			sa := demand.NewShardedAggregator(cat, 4)
			sa.SetCookieHint(cfg.Cookies)
			emit, done := sa.FeedRefs()
			st, err := r.Replay(pred, emit)
			done()
			if err != nil {
				b.Fatal(err)
			}
			if st.Matched == 0 || (wantSkips && st.Skipped == 0) {
				b.Fatalf("replay stats %+v", st)
			}
			skipped += st.Skipped
		}
		b.ReportMetric(float64(skipped)/float64(b.N), "skippedsegs/op")
	}
	b.Run("replay", func(b *testing.B) { replay(b, seg.All(), false) })
	b.Run("replay-pushdown/src", func(b *testing.B) { replay(b, seg.All().WithSrc(0), true) })
}

// BenchmarkGenerateOnly isolates click synthesis (no aggregation):
// serial Simulate against SimulateRange leapfrog-fanned across N
// goroutines — the raw throughput the stream-splitting scheme unlocks.
func BenchmarkGenerateOnly(b *testing.B) {
	cat, err := benchStudy.Catalog(logs.Amazon)
	if err != nil {
		b.Fatal(err)
	}
	cfg := demand.SimConfig{Events: 200000, Cookies: 30000, Seed: 7}
	events := func(b *testing.B) { b.SetBytes(int64(2 * cfg.Events)) }

	b.Run("serial", func(b *testing.B) {
		events(b)
		for i := 0; i < b.N; i++ {
			n := 0
			if err := demand.Simulate(cat, cfg, func(logs.Click) error {
				n++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if n != 2*cfg.Events {
				b.Fatal("short stream")
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("range=%d", workers), func(b *testing.B) {
			events(b)
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				chunk := (cfg.Events + workers - 1) / workers
				for _, src := range []logs.Source{logs.Search, logs.Browse} {
					for w := 0; w < workers; w++ {
						lo := w * chunk
						hi := lo + chunk
						if hi > cfg.Events {
							hi = cfg.Events
						}
						if lo >= hi {
							continue
						}
						wg.Add(1)
						go func(src logs.Source, lo, hi int) {
							defer wg.Done()
							if err := demand.SimulateRange(cat, cfg, src, lo, hi,
								func(logs.Click) error { return nil }); err != nil {
								b.Error(err)
							}
						}(src, lo, hi)
					}
				}
				wg.Wait()
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSetCoverLazy vs ...Naive: the lazy-greedy heap
// against the textbook rescanning greedy.
func BenchmarkAblationSetCoverLazy(b *testing.B) {
	idx := benchIndex(b, entity.Banks, entity.AttrPhone)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coverage.GreedySetCover(idx, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSetCoverNaive(b *testing.B) {
	idx := benchIndex(b, entity.Banks, entity.AttrPhone)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coverage.GreedySetCoverNaive(idx, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCookiesExact vs ...Sketch: exact distinct-cookie
// sets against HyperLogLog sketches.
func BenchmarkAblationCookiesExact(b *testing.B) {
	cat, err := benchStudy.Catalog(logs.Yelp)
	if err != nil {
		b.Fatal(err)
	}
	cfg := demand.SimConfig{Events: 50000, Cookies: 20000, Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := demand.NewAggregator(cat)
		if err := demand.Simulate(cat, cfg, func(c logs.Click) error {
			agg.Add(c)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCookiesSketch(b *testing.B) {
	cat, err := benchStudy.Catalog(logs.Yelp)
	if err != nil {
		b.Fatal(err)
	}
	cfg := demand.SimConfig{Events: 50000, Cookies: 20000, Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := demand.NewSketchAggregator(cat, 12)
		if err != nil {
			b.Fatal(err)
		}
		if err := demand.Simulate(cat, cfg, func(c logs.Click) error {
			agg.Add(c)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDiameterIFUB vs ...Brute: iFUB exact diameter vs
// the paper's all-sources BFS.
func ablationGraph(b *testing.B) (*graph.Bipartite, graph.Components) {
	b.Helper()
	// A dedicated small web keeps the brute-force baseline (quadratic in
	// nodes times edges) tractable; the speedup ratio is what matters.
	web, err := synth.Generate(synth.Config{
		Domain: entity.Banks, Entities: 800, DirectoryHosts: 1200, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.FromIndex(web.DirectIndexes()[entity.AttrPhone])
	if err != nil {
		b.Fatal(err)
	}
	return g, g.AllComponents()
}

func BenchmarkAblationDiameterIFUB(b *testing.B) {
	g, c := ablationGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := g.DiameterLargest(c); d == 0 {
			b.Fatal("zero diameter")
		}
	}
}

func BenchmarkAblationDiameterBrute(b *testing.B) {
	g, c := ablationGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := g.DiameterBrute(c); d == 0 {
			b.Fatal("zero diameter")
		}
	}
}

// BenchmarkAblationMatchRegex vs ...AhoCorasick: page-text phone
// matching via regex-extract-then-lookup vs one-pass multi-pattern
// search over all database phones.
func ablationPages(b *testing.B) (*entity.DB, []string) {
	b.Helper()
	web, err := synth.Generate(synth.Config{
		Domain: entity.Hotels, Entities: 2000, DirectoryHosts: 100, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	var texts []string
	for si := range web.Sites[:20] {
		for _, p := range web.RenderSite(&web.Sites[si]) {
			texts = append(texts, string(p.HTML))
		}
	}
	return web.DB, texts
}

func BenchmarkAblationMatchRegex(b *testing.B) {
	db, texts := ablationPages(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, t := range texts {
			total += len(extract.MatchPhones(db, t))
		}
		if total == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkAblationMatchAhoCorasick(b *testing.B) {
	db, texts := ablationPages(b)
	ac, err := extract.PhoneAutomaton(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, t := range texts {
			total += len(ac.FindValues(t))
		}
		if total == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkAblationIndexSerial vs ...Sharded: single-threaded index
// aggregation against the host-sharded concurrent reducer.
func ablationMentions(b *testing.B) []struct {
	host string
	id   int
} {
	b.Helper()
	idx := benchIndex(b, entity.Schools, entity.AttrPhone)
	var out []struct {
		host string
		id   int
	}
	for _, s := range idx.Sites {
		for _, e := range s.Entities {
			out = append(out, struct {
				host string
				id   int
			}{s.Host, e})
		}
	}
	return out
}

func BenchmarkAblationIndexSerial(b *testing.B) {
	mentions := ablationMentions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := index.NewBuilder(entity.Schools, entity.AttrPhone, 6000)
		for _, m := range mentions {
			builder.Add(m.host, m.id)
		}
		if builder.Build().NumSites() == 0 {
			b.Fatal("empty index")
		}
	}
}

func BenchmarkAblationIndexSharded(b *testing.B) {
	mentions := ablationMentions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb := index.NewShardedBuilder(entity.Schools, entity.AttrPhone, 6000, 16)
		done := make(chan struct{}, 4)
		chunk := (len(mentions) + 3) / 4
		for w := 0; w < 4; w++ {
			go func(lo int) {
				hi := lo + chunk
				if hi > len(mentions) {
					hi = len(mentions)
				}
				for _, m := range mentions[lo:hi] {
					sb.Add(m.host, m.id)
				}
				done <- struct{}{}
			}(w * chunk)
		}
		for w := 0; w < 4; w++ {
			<-done
		}
		idx, err := sb.Build()
		if err != nil || idx.NumSites() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkHTMLParse measures the tokenizer+DOM+text-extraction cost on
// rendered pages — the extraction pipeline's per-page work.
func BenchmarkHTMLParse(b *testing.B) {
	_, texts := ablationPages(b)
	var total int
	for _, t := range texts {
		total += len(t)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, t := range texts {
			doc := htmlx.Parse([]byte(t))
			n += len(doc.Text()) + len(doc.Anchors())
		}
		if n == 0 {
			b.Fatal("no text extracted")
		}
	}
}

// BenchmarkWARCRoundTrip measures archive write+read throughput on an
// in-memory gzipped WARC.
func BenchmarkWARCRoundTrip(b *testing.B) {
	web, err := synth.Generate(synth.Config{
		Domain: entity.Banks, Entities: 200, DirectoryHosts: 300, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		cdx, err := core.WriteWARC(web, &buf, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(cdx.Entries) == 0 {
			b.Fatal("no records")
		}
		if _, _, err := core.ExtractWARC(bytes.NewReader(buf.Bytes()), web.DB, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks ---

// BenchmarkBootstrapExpand measures one full set-expansion run (§5's
// algorithm family) from a single seed over a mid-scale index.
func BenchmarkBootstrapExpand(b *testing.B) {
	idx := benchIndex(b, entity.Retail, entity.AttrPhone)
	x, err := bootstrap.NewExpander(idx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := x.Expand([]int{42}, bootstrap.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.ReachedEntities() == 0 {
			b.Fatal("expansion reached nothing")
		}
	}
}

// BenchmarkCorroborateResolve measures noisy-extraction simulation plus
// a k=5 corroborated resolution over a mid-scale phone index.
func BenchmarkCorroborateResolve(b *testing.B) {
	web, err := synth.Generate(synth.Config{
		Domain: entity.Banks, Entities: 2000, DirectoryHosts: 3000, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	idx := web.DirectIndexes()[entity.AttrPhone]
	truth := func(id int) string { return string(web.DB.Entities[id].Phone) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := corroborate.Simulate(idx, truth, corroborate.Config{
			Noise: 0.2, Mode: corroborate.Confusion, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		resolved, err := obs.Resolve(5)
		if err != nil {
			b.Fatal(err)
		}
		if len(resolved) == 0 {
			b.Fatal("nothing resolved")
		}
	}
}

// BenchmarkAblationDiameterParallel: the paper's all-sources-BFS method
// parallelized across cores — exact like iFUB, but one BFS per node.
func BenchmarkAblationDiameterParallel(b *testing.B) {
	g, c := ablationGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := g.DiameterParallel(c, 0); d == 0 {
			b.Fatal("zero diameter")
		}
	}
}
